/**
 * @file
 * Multi-head attention with every quantization point of the paper's
 * Figure 5 made explicit:
 *
 *   QKV projections  -> GEMM quant (inputs + weights)
 *   Q.K^T            -> GEMM quant
 *   unscaled scores  -> attention-scaling quant point  <- most sensitive
 *   scaled scores    -> activation quant point (softmax input)
 *   softmax          -> exact or posit-approximate (section 4.1/5.2)
 *   P.V              -> GEMM quant
 *   output proj      -> GEMM quant
 *
 * Backward mirrors the schedule, including the re-derived softmax
 * gradient for the posit piece-wise-linear reciprocal (Eq. 4/5) and
 * per-tensor scaled gradient quantization.
 */
#ifndef QT8_NN_ATTENTION_H
#define QT8_NN_ATTENTION_H

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/linear.h"
#include "quant/config.h"
#include "tensor/packed.h"

namespace qt8 {

/// Build-time context shared by module constructors: the weight-init
/// RNG stream and the allocator for backward-scaling slot ids.
struct BuildCtx
{
    explicit BuildCtx(uint64_t seed) : rng(seed) {}

    Rng rng;
    int slots = 0;

    int slot() { return slots++; }
};

/**
 * Per-attention-layer key/value cache for incremental decoding.
 *
 * Holds the *already-quantized* K/V projection outputs (the same
 * values the full-prefix forward stores in its kq_/vq_ panels) in the
 * flat [batch * capacity, d_model] layout, so a cached decode step
 * reproduces the reference attention bit for bit: every forward quant
 * point in this codebase rounds element-wise on a static grid, which
 * makes a row quantized alone identical to the same row quantized as
 * part of the full tensor.
 *
 * Self-attention caches append one row per sequence per decoded token;
 * cross-attention caches are primed once from the encoder memory and
 * then read-only.
 *
 * **Packed mode** (reset with a non-null grid format): the fp32 k/v
 * panels are never allocated; rows are quantized straight to uint8
 * grid codes on append/fill (`Quantizer::gridIndex`) into k_codes /
 * v_codes — 1 byte per element instead of 4 — and the decode-step
 * attention GEMVs decode codes inside the micro-kernel
 * (tensor/packed.h). Because appended rows already sit exactly on the
 * fwd grid (the kGemm quant point applies the grid alone, no carrier
 * after), pack -> decode reproduces the fp32 cache bit for bit; NaN
 * rows (fault isolation) take the reserved out-of-grid code, whose
 * table entry decodes back to NaN.
 */
struct KVCache
{
    Tensor k; ///< [batch * capacity, d_model] quantized key panels.
    Tensor v; ///< [batch * capacity, d_model] quantized value panels.
    std::vector<uint8_t> k_codes; ///< Packed mode: key grid codes.
    std::vector<uint8_t> v_codes; ///< Packed mode: value grid codes.
    std::vector<double> table;    ///< 256-entry decode table (NaN tail).
    const Quantizer *fmt = nullptr; ///< Non-null = packed (borrowed).
    int64_t d_model = 0;
    int64_t batch = 0;
    int64_t capacity = 0;
    int64_t len = 0; ///< Cached positions per sequence.

    /// Allocate (or re-shape) for a decode session and empty the cache.
    /// @p packed_fmt Non-null (a <=255-value grid quantizer, typically
    /// QuantConfig::kvPackedFormat()): store uint8 codes instead of
    /// fp32 panels. The quantizer is borrowed and must outlive the
    /// cache.
    void reset(int64_t batch_size, int64_t cap, int64_t d_model,
               const Quantizer *packed_fmt = nullptr);

    bool packed() const { return fmt != nullptr; }

    /// True while another position fits in every sequence's panel.
    bool canAppend() const { return len < capacity; }

    /// Append one [batch, d_model] row block (position `len`). Returns
    /// false — without writing — when the cache is at capacity, so
    /// callers can surface a typed overflow instead of corrupting rows.
    bool append(const Tensor &k_rows, const Tensor &v_rows);

    /// Fill from full [batch * rows, d_model] panels (cross-attention).
    void fill(const Tensor &k_all, const Tensor &v_all, int64_t rows);

    /// Resident bytes of the K+V panels (codes when packed, fp32
    /// otherwise; the 4 KB of decode tables is excluded as noise).
    size_t residentBytes() const;
};

/**
 * Slot-addressed pooled K/V cache panel for one attention layer: the
 * continuous-batching analogue of KVCache. Where KVCache binds a rigid
 * batch whose sequences advance in lockstep, KVSlots holds `n_slots`
 * independent sequences at (generally) different lengths; a scheduler
 * gathers an arbitrary subset of slots into each decode step and
 * releases a slot the moment its sequence retires.
 *
 * Layout matches KVCache (slot s, position t at row s * capacity + t),
 * and the same static-grid quantization argument applies: rows are
 * quantized element-wise on entry, so a step gathered over any slot
 * subset reproduces the solo decode of each sequence bit for bit.
 * Released slots are *not* zeroed — `len[slot]` alone defines what is
 * visible, so a reused (dirty) slot still decodes identically.
 *
 * Supports the same packed uint8-code storage mode as KVCache (see
 * there); dirty-slot reuse holds for codes exactly as for fp32 rows.
 */
struct KVSlots
{
    Tensor k; ///< [n_slots * capacity, d_model] quantized key panels.
    Tensor v; ///< [n_slots * capacity, d_model] quantized value panels.
    std::vector<uint8_t> k_codes; ///< Packed mode: key grid codes.
    std::vector<uint8_t> v_codes; ///< Packed mode: value grid codes.
    std::vector<double> table;    ///< 256-entry decode table (NaN tail).
    const Quantizer *fmt = nullptr; ///< Non-null = packed (borrowed).
    int64_t d_model = 0;
    std::vector<int64_t> len; ///< Cached positions, per slot.
    int64_t n_slots = 0;
    int64_t capacity = 0;

    /// Allocate the pool with every slot empty. @p packed_fmt as in
    /// KVCache::reset.
    void reset(int64_t slots, int64_t cap, int64_t d_model,
               const Quantizer *packed_fmt = nullptr);

    bool packed() const { return fmt != nullptr; }

    bool canAppend(int32_t slot) const
    {
        return len[static_cast<size_t>(slot)] < capacity;
    }

    /// Append one [d_model] K/V row pair at the slot's current length.
    /// Returns false — without writing — when the slot is full.
    bool append(int32_t slot, const float *k_row, const float *v_row);

    /// Fill a slot from [rows, d_model] panels (cross-attention prime).
    void fill(int32_t slot, const Tensor &k_all, const Tensor &v_all,
              int64_t rows);

    /// Retire a slot: its rows become invisible (and reusable) at once.
    void release(int32_t slot) { len[static_cast<size_t>(slot)] = 0; }

    /// Resident bytes of the K+V panels (codes when packed, fp32
    /// otherwise).
    size_t residentBytes() const;
};

/**
 * Page-addressed pooled K/V panel for one attention layer: the paged
 * analogue of KVSlots. The panel is a single arena of `n_pages` fixed
 * `page_size`-row pages; a sequence owns an ordered page table (managed
 * by serve::PagedKVPool) and its logical row r lives at physical row
 *
 *   pages[r / page_size] * page_size + r % page_size.
 *
 * Pages are refcounted by the pool, so several sequences sharing a
 * prompt prefix can map the same read-only pages. The same static-grid
 * quantization + row-independent accumulation argument as KVSlots
 * applies (rows are quantized element-wise on write; the attention
 * GEMVs only change the address computation), so a paged decode is
 * bit-identical to the slab pool on the same token history. Freed
 * pages are not zeroed — the page table alone defines visibility, so
 * dirty-page reuse decodes identically.
 *
 * Packed mode stores uint8 grid codes exactly as KVSlots does.
 */
struct KVPagePanels
{
    Tensor k; ///< [n_pages * page_size, d_model] quantized key rows.
    Tensor v; ///< [n_pages * page_size, d_model] quantized value rows.
    std::vector<uint8_t> k_codes; ///< Packed mode: key grid codes.
    std::vector<uint8_t> v_codes; ///< Packed mode: value grid codes.
    std::vector<double> table;    ///< 256-entry decode table (NaN tail).
    const Quantizer *fmt = nullptr; ///< Non-null = packed (borrowed).
    int64_t d_model = 0;
    int64_t n_pages = 0;
    int64_t page_size = 0;

    /// Allocate the arena (all pages, upfront). @p packed_fmt as in
    /// KVCache::reset.
    void reset(int64_t pages, int64_t page_sz, int64_t d_model,
               const Quantizer *packed_fmt = nullptr);

    bool packed() const { return fmt != nullptr; }

    /// Quantize-and-store one [d_model] K/V row pair at row @p offset
    /// of page @p page (offset in [0, page_size)).
    void writeRow(int32_t page, int64_t offset, const float *k_row,
                  const float *v_row);

    /// Copy the first @p rows rows of @p src_page into @p dst_page
    /// (copy-on-write realization of a partially-matched prefix page).
    /// Codes/fp32 rows are copied verbatim, so the clone is
    /// bit-identical to recomputing them.
    void copyPageRows(int32_t src_page, int32_t dst_page, int64_t rows);

    /// Resident bytes of the whole K+V arena (codes when packed, fp32
    /// otherwise) — pages are allocated upfront, so this is fixed.
    size_t residentBytes() const;
};

/**
 * One query row of a paged incremental forward: which page table its
 * sequence reads K/V through, where this row is written (self), and
 * how many cached rows it may attend.
 */
struct PagedRowRef
{
    const int32_t *pages = nullptr; ///< Page table (borrowed).
    int64_t n_pages = 0;            ///< Table entries.
    int64_t pos = 0;     ///< Self: logical row index this query writes.
    int64_t visible = 0; ///< Rows attended: self pos + 1, cross = len.
};

/// Multi-head attention (self- or cross-).
class MultiHeadAttention
{
  public:
    MultiHeadAttention(int64_t d_model, int n_heads, BuildCtx &ctx,
                       const std::string &name);

    /**
     * @param x Query-side input, [B*S, d].
     * @param batch B.
     * @param seq_q S.
     * @param memory Key/value-side input for cross-attention
     *   ([B*T, d]); nullptr for self-attention (keys = x, T = S).
     * @param seq_kv T (ignored for self-attention).
     * @param key_pad_mask Optional B*T bytes, 1 = key is padding.
     * @param causal Apply causal (autoregressive) masking.
     * @return [B*S, d].
     */
    Tensor forward(QuantSession &qs, const Tensor &x, int64_t batch,
                   int64_t seq_q, const Tensor *memory = nullptr,
                   int64_t seq_kv = 0,
                   const uint8_t *key_pad_mask = nullptr,
                   bool causal = false);

    /**
     * Incremental (single-position) forward for autoregressive decode.
     *
     * @param x The newest position's input, [B, d] (one row per
     *   sequence).
     * @param cache Self-attention: receives this step's quantized K/V
     *   rows and provides all earlier ones (causality is implicit — the
     *   new query attends exactly the cached positions plus itself).
     *   Cross-attention: primed from @p memory on first use (len == 0),
     *   reused afterwards.
     * @param memory Key/value-side input for cross-attention
     *   ([B*T, d]); nullptr for self-attention.
     * @param seq_kv T (ignored for self-attention).
     * @param key_pad_mask Optional B*T bytes for cross-attention.
     * @return [B, d] — bit-identical to the last target row of the
     *   full-prefix forward() over the same token history.
     *
     * Inference-only: does not touch the training caches, so it can be
     * interleaved with forward()/backward() pairs.
     */
    Tensor forwardIncremental(QuantSession &qs, const Tensor &x,
                              int64_t batch, KVCache &cache,
                              const Tensor *memory = nullptr,
                              int64_t seq_kv = 0,
                              const uint8_t *key_pad_mask = nullptr);

    /**
     * Slot-indexed incremental forward over a pooled cache (continuous
     * batching): row i of @p x is the newest position of the sequence
     * living in pool slot @p slots[i], and the slots may sit at
     * different lengths.
     *
     * @param x [n_active, d] — one row per gathered sequence.
     * @param slots n_active pool slot ids (distinct).
     * @param cache The layer's slot pool. @p self true: this step's
     *   quantized K/V rows are appended to each row's slot (the caller
     *   must have checked canAppend). @p self false (cross-attention):
     *   the slots must have been primed with primeSlot beforehand.
     * @param key_pad_masks Cross-attention only: per-active-row source
     *   padding masks (entry i has cache.len[slots[i]] bytes, or is
     *   nullptr); nullptr disables masking entirely.
     * @return [n_active, d] — row i bit-identical to a solo decode of
     *   slot slots[i]'s sequence (static-grid element-wise quant points
     *   plus row-independent GEMM accumulation; see DESIGN.md §9).
     */
    Tensor forwardIncrementalSlots(QuantSession &qs, const Tensor &x,
                                   const std::vector<int32_t> &slots,
                                   KVSlots &cache, bool self,
                                   const uint8_t *const *key_pad_masks =
                                       nullptr);

    /// Project a single sequence's encoder memory ([rows, d]) through
    /// k/v_proj and park it in @p slot (cross-attention prime). Returns
    /// false if rows exceeds the pool capacity.
    bool primeSlot(QuantSession &qs, const Tensor &memory, int64_t rows,
                   KVSlots &cache, int32_t slot);

    /**
     * Page-table incremental forward (paged pool, chunked prefill):
     * row i of @p x is the query at logical position rows[i].pos of the
     * sequence whose page table rows[i] borrows, and attends its first
     * rows[i].visible cached rows.
     *
     * @param cache The layer's page arena. @p self true: each row's
     *   quantized K/V projections are written at rows[i].pos through
     *   the page table *before* any scores are computed, so a prompt
     *   chunk's rows may appear in one call (row i with
     *   visible == pos + 1 sees its own and all earlier chunk rows —
     *   exactly the token-by-token schedule). @p self false
     *   (cross-attention): pages must have been primed with primePages.
     * @param key_pad_masks As forwardIncrementalSlots (entry i has
     *   rows[i].visible bytes).
     * @return [n_rows, d] — row i bit-identical to the corresponding
     *   row of a solo/slab decode of the same history (DESIGN.md §14).
     */
    Tensor forwardPagedRows(QuantSession &qs, const Tensor &x,
                            const std::vector<PagedRowRef> &rows,
                            KVPagePanels &cache, bool self,
                            const uint8_t *const *key_pad_masks =
                                nullptr);

    /// Project a single sequence's encoder memory ([rows, d]) through
    /// k/v_proj and park it in the cross-attention pages of @p pages
    /// (in table order). Returns false if rows exceeds the table span.
    bool primePages(QuantSession &qs, const Tensor &memory, int64_t rows,
                    KVPagePanels &cache, const int32_t *pages,
                    int64_t n_pages);

    /**
     * @param gy Gradient of the output, [B*S, d].
     * @param gmemory For cross-attention: receives (accumulates) the
     *   gradient w.r.t. the memory input; must be preallocated [B*T, d].
     * @return Gradient w.r.t. x.
     */
    Tensor backward(QuantSession &qs, const Tensor &gy,
                    Tensor *gmemory = nullptr);

    void collectParams(ParamList &out);

    /// Enable LoRA on the query and value projections (the RoBERTa
    /// recipe) or on all four projections (the MobileBERT recipe).
    void enableLora(int rank, float alpha, Rng &rng, bool all_proj);

    /// Mean absolute unscaled-attention magnitude from the last forward
    /// (used by the distribution benches).
    double lastUnscaledAmax() const { return last_unscaled_amax_; }

    /// Test knob: force the batched (batch x head) loops serial so the
    /// parallel path can be checked for bit-identity in-process
    /// (QT8_THREADS is latched once and cannot be toggled).
    inline static bool force_serial = false;

    Linear q_proj;
    Linear k_proj;
    Linear v_proj;
    Linear out_proj;

  private:
    int64_t d_model_;
    int n_heads_;
    int64_t d_head_;
    float scale_;
    int slot_ctx_, slot_act_, slot_scale_;

    // Forward cache.
    int64_t b_ = 0, sq_ = 0, skv_ = 0;
    bool self_attn_ = true;
    Tensor qq_, kq_, vq_;   ///< GEMM-quantized projection outputs.
    Tensor probs_;          ///< Softmax outputs [B*H*S, T].
    Tensor probs_q_;        ///< GEMM-quantized probs.
    Tensor e_cache_;        ///< Approx-softmax exponentials.
    std::vector<double> sums_; ///< Approx-softmax row sums.
    double last_unscaled_amax_ = 0.0;
};

} // namespace qt8

#endif // QT8_NN_ATTENTION_H
