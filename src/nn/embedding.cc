#include "nn/embedding.h"

#include <cassert>

namespace qt8 {

Embedding::Embedding(int64_t vocab, int64_t max_seq, int64_t dim, Rng &rng,
                     const std::string &name)
    : dim_(dim)
{
    // Unit-scale token embeddings with weaker positional ones; the
    // encoder applies an embedding LayerNorm (as BERT does) right after.
    Tensor t({vocab, dim});
    rng.fillNormal(t, 1.0);
    tok.init(name + ".tok", std::move(t));
    Tensor p({max_seq, dim});
    rng.fillNormal(p, 0.5);
    pos.init(name + ".pos", std::move(p));
}

Tensor
Embedding::forward(QuantSession &qs, const std::vector<int32_t> &ids,
                   int64_t batch, int64_t seq, int64_t pos_offset)
{
    assert(static_cast<int64_t>(ids.size()) == batch * seq);
    assert(pos_offset >= 0 && pos_offset + seq <= pos.value.dim(0));
    cached_ids_ = ids;
    cached_seq_ = seq;
    cached_offset_ = pos_offset;

    Tensor out({batch * seq, dim_});
    const float *pt = tok.value.data();
    const float *pp = pos.value.data();
    float *po = out.data();
    for (int64_t i = 0; i < batch * seq; ++i) {
        const int64_t id = ids[static_cast<size_t>(i)];
        const int64_t s = pos_offset + i % seq;
        assert(id >= 0 && id < tok.value.dim(0));
        for (int64_t j = 0; j < dim_; ++j)
            po[i * dim_ + j] = pt[id * dim_ + j] + pp[s * dim_ + j];
    }
    qs.carrier(out);
    return out;
}

Tensor
Embedding::forwardAt(QuantSession &qs, const std::vector<int32_t> &ids,
                     const std::vector<int64_t> &positions)
{
    const int64_t n = static_cast<int64_t>(ids.size());
    assert(positions.size() == ids.size());

    Tensor out({n, dim_});
    const float *pt = tok.value.data();
    const float *pp = pos.value.data();
    float *po = out.data();
    for (int64_t i = 0; i < n; ++i) {
        const int64_t id = ids[static_cast<size_t>(i)];
        const int64_t s = positions[static_cast<size_t>(i)];
        assert(id >= 0 && id < tok.value.dim(0));
        assert(s >= 0 && s < pos.value.dim(0));
        for (int64_t j = 0; j < dim_; ++j)
            po[i * dim_ + j] = pt[id * dim_ + j] + pp[s * dim_ + j];
    }
    qs.carrier(out);
    return out;
}

void
Embedding::backward(QuantSession &qs, const Tensor &gy)
{
    (void)qs;
    if (!tok.trainable)
        return;
    const float *pg = gy.data();
    float *gt = tok.grad.data();
    float *gp = pos.grad.data();
    const int64_t n = gy.dim(0);
    for (int64_t i = 0; i < n; ++i) {
        const int64_t id = cached_ids_[static_cast<size_t>(i)];
        const int64_t s = cached_offset_ + i % cached_seq_;
        for (int64_t j = 0; j < dim_; ++j) {
            gt[id * dim_ + j] += pg[i * dim_ + j];
            gp[s * dim_ + j] += pg[i * dim_ + j];
        }
    }
}

void
Embedding::collectParams(ParamList &out)
{
    out.push_back(&tok);
    out.push_back(&pos);
}

void
Embedding::freeze()
{
    tok.trainable = false;
    pos.trainable = false;
}

} // namespace qt8
