#include "nn/loss.h"

#include <cassert>
#include <cmath>

namespace qt8 {

CEResult
softmaxCrossEntropy(const Tensor &logits,
                    const std::vector<int32_t> &targets)
{
    assert(logits.rank() == 2);
    const int64_t n = logits.dim(0);
    const int64_t c = logits.dim(1);
    assert(static_cast<int64_t>(targets.size()) == n);

    CEResult res;
    res.dlogits = Tensor({n, c});

    double total = 0.0;
    int64_t count = 0;
    const float *pl = logits.data();
    float *pd = res.dlogits.data();

    for (int64_t i = 0; i < n; ++i) {
        const int32_t t = targets[static_cast<size_t>(i)];
        if (t == kIgnoreIndex)
            continue;
        assert(t >= 0 && t < c);
        const float *row = pl + i * c;
        double m = row[0];
        for (int64_t j = 1; j < c; ++j)
            m = std::max(m, static_cast<double>(row[j]));
        double sum = 0.0;
        for (int64_t j = 0; j < c; ++j)
            sum += std::exp(row[j] - m);
        const double logz = m + std::log(sum);
        total += logz - row[t];
        ++count;
        for (int64_t j = 0; j < c; ++j) {
            const double p = std::exp(row[j] - logz);
            pd[i * c + j] = static_cast<float>(p - (j == t ? 1.0 : 0.0));
        }
    }

    res.count = count;
    if (count > 0) {
        res.loss = total / static_cast<double>(count);
        const float inv = 1.0f / static_cast<float>(count);
        for (int64_t i = 0; i < n * c; ++i)
            pd[i] *= inv;
    }
    return res;
}

} // namespace qt8
