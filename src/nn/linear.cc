#include "nn/linear.h"

#include <cmath>

#include "tensor/ops.h"

namespace qt8 {

int64_t
countTrainable(const ParamList &params)
{
    int64_t n = 0;
    for (const Param *p : params)
        if (p->trainable)
            n += p->numel();
    return n;
}

int64_t
countTotal(const ParamList &params)
{
    int64_t n = 0;
    for (const Param *p : params)
        n += p->numel();
    return n;
}

void
copyParamValues(const ParamList &dst, const ParamList &src)
{
    assert(dst.size() == src.size());
    for (size_t i = 0; i < dst.size(); ++i) {
        assert(dst[i]->value.sameShape(src[i]->value));
        dst[i]->value = src[i]->value;
    }
}

Linear::Linear(int64_t in, int64_t out, Rng &rng, const std::string &name,
               int slot)
    : in_(in), out_(out), slot_(slot)
{
    Tensor w({out, in});
    // Fan-in-scaled Gaussian init (keeps pre-activations at unit scale
    // for any width; BERT's fixed 0.02 assumes d~768).
    rng.fillNormal(w, 1.0 / std::sqrt(static_cast<double>(in)));
    weight.init(name + ".weight", std::move(w));
    bias.init(name + ".bias", Tensor({out}));
}

void
Linear::enableLora(int rank, float alpha, Rng &rng)
{
    lora_rank_ = rank;
    lora_alpha_ = alpha;
    weight.trainable = false;
    bias.trainable = false;
    Tensor a({rank, in_});
    rng.fillNormal(a, 0.02);
    lora_a.init(weight.name + ".lora_a", std::move(a));
    lora_b.init(weight.name + ".lora_b", Tensor({out_, rank}));
}

Tensor
Linear::effectiveWeight(QuantSession &qs)
{
    if (!loraEnabled()) {
        Tensor wq = weight.value;
        qs.quantWeight(wq);
        return wq;
    }
    // Eq. 7: quant(W0_8 + alpha * quant(B) quant(A)).
    // LoRA factors live in the 16-bit carrier and are quantized to the
    // 8-bit forward type before their product.
    aq_ = lora_a.value;
    qs.quantWeight(aq_);
    bq_ = lora_b.value;
    qs.quantWeight(bq_);

    Tensor w0q = weight.value;
    qs.quantWeight(w0q); // frozen base weight kept in 8-bit
    Tensor delta({out_, in_});
    gemm(bq_, false, aq_, false, delta, lora_alpha_);
    addInPlace(w0q, delta);
    qs.quantWeight(w0q); // merged weights re-quantized to 8-bit
    return w0q;
}

Tensor
Linear::forward(QuantSession &qs, const Tensor &x)
{
    const bool head_fused = is_head_ && qs.config().fuse_head;
    xq_ = x;
    if (head_fused) {
        qs.carrier(xq_);
        wq_ = weight.value;
        qs.carrier(wq_);
    } else {
        qs.quantFwd(OpClass::kGemm, xq_);
        wq_ = effectiveWeight(qs);
    }

    Tensor y = matmul(xq_, wq_, false, true);
    addRowBias(y, bias.value);
    qs.carrier(y);
    return y;
}

Tensor
Linear::backward(QuantSession &qs, const Tensor &gy)
{
    const bool head_fused = is_head_ && qs.config().fuse_head;
    Tensor gyq = gy;
    if (head_fused)
        qs.carrier(gyq);
    else
        qs.quantBwd(OpClass::kGemm, gyq, slot_);

    // Bias gradient (fused row-sum accumulate; same rounding as
    // sumRows + addInPlace without the temporary).
    if (bias.trainable)
        sumRowsAdd(bias.grad, gyq);

    if (!loraEnabled()) {
        if (weight.trainable) {
            // dW += gy^T . x  (wgrad GEMM, fused accumulation).
            gemm(gyq, true, xq_, false, weight.grad, 1.0f, 1.0f);
        }
    } else {
        // Straight-through gradients to the LoRA factors:
        // dB = alpha * gy^T (x A^T), dA = alpha * (gy B)^T x.
        const Tensor xa = matmul(xq_, aq_, false, true);     // [m, r]
        gemm(gyq, true, xa, false, lora_b.grad, lora_alpha_, 1.0f);
        const Tensor gyb = matmul(gyq, bq_, false, false);   // [m, r]
        gemm(gyb, true, xq_, false, lora_a.grad, lora_alpha_, 1.0f);
    }

    // dx = gy . W (dgrad GEMM).
    Tensor gx = matmul(gyq, wq_, false, false);
    qs.carrier(gx);
    return gx;
}

void
Linear::collectParams(ParamList &out)
{
    out.push_back(&weight);
    out.push_back(&bias);
    if (loraEnabled()) {
        out.push_back(&lora_a);
        out.push_back(&lora_b);
    }
}

} // namespace qt8
