#include "nn/linear.h"

#include <array>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "util/trace.h"

namespace qt8 {

int64_t
countTrainable(const ParamList &params)
{
    int64_t n = 0;
    for (const Param *p : params)
        if (p->trainable)
            n += p->numel();
    return n;
}

int64_t
countTotal(const ParamList &params)
{
    int64_t n = 0;
    for (const Param *p : params)
        n += p->numel();
    return n;
}

void
copyParamValues(const ParamList &dst, const ParamList &src)
{
    assert(dst.size() == src.size());
    for (size_t i = 0; i < dst.size(); ++i) {
        assert(dst[i]->value.sameShape(src[i]->value));
        dst[i]->value = src[i]->value;
    }
}

Linear::Linear(int64_t in, int64_t out, Rng &rng, const std::string &name,
               int slot)
    : in_(in), out_(out), slot_(slot)
{
    Tensor w({out, in});
    // Fan-in-scaled Gaussian init (keeps pre-activations at unit scale
    // for any width; BERT's fixed 0.02 assumes d~768).
    rng.fillNormal(w, 1.0 / std::sqrt(static_cast<double>(in)));
    weight.init(name + ".weight", std::move(w));
    bias.init(name + ".bias", Tensor({out}));
}

void
Linear::enableLora(int rank, float alpha, Rng &rng)
{
    lora_rank_ = rank;
    lora_alpha_ = alpha;
    weight.trainable = false;
    bias.trainable = false;
    Tensor a({rank, in_});
    rng.fillNormal(a, 0.02);
    lora_a.init(weight.name + ".lora_a", std::move(a));
    lora_b.init(weight.name + ".lora_b", Tensor({out_, rank}));
}

Tensor
Linear::effectiveWeight(QuantSession &qs)
{
    if (!loraEnabled()) {
        Tensor wq = weight.value;
        qs.quantWeight(wq);
        return wq;
    }
    // Eq. 7: quant(W0_8 + alpha * quant(B) quant(A)).
    // LoRA factors live in the 16-bit carrier and are quantized to the
    // 8-bit forward type before their product.
    aq_ = lora_a.value;
    qs.quantWeight(aq_);
    bq_ = lora_b.value;
    qs.quantWeight(bq_);

    Tensor w0q = weight.value;
    qs.quantWeight(w0q); // frozen base weight kept in 8-bit
    Tensor delta({out_, in_});
    gemm(bq_, false, aq_, false, delta, lora_alpha_);
    addInPlace(w0q, delta);
    qs.quantWeight(w0q); // merged weights re-quantized to 8-bit
    return w0q;
}

bool
Linear::packedUsable(const QuantSession &qs) const
{
    const QuantConfig &cfg = qs.config();
    return cfg.weights_packed && cfg.quant_gemm && !cfg.fwd.isIdentity() &&
           !cfg.int8_per_channel_weights && PackedTensor::packable(cfg.fwd) &&
           !loraEnabled() && !(is_head_ && cfg.fuse_head);
}

void
Linear::ensurePacked(const Quantizer &q)
{
    if (!packed_.empty() && packed_.format() == q.name())
        return;
    if (trace::collecting()) {
        // The unfused path re-quantizes the weight each forward and
        // accumulates its health; in packed mode the quantization
        // happens once here, so the "weight" point is recorded once
        // per (re)pack instead of once per forward.
        Tensor wq = weight.value;
        QuantHealth h;
        q.quantizeInPlace(wq.data(), static_cast<size_t>(wq.numel()), h);
        trace::healthAccumulate("weight", h);
    }
    packed_ = PackedTensor::pack(weight.value, q);
}

Tensor
Linear::forwardPacked(QuantSession &qs, const Tensor &x,
                      const LinearFusedTail *tail)
{
    const QuantConfig &cfg = qs.config();
    ensurePacked(cfg.fwd);

    // Input path identical to the unfused forward (tap + quantize).
    Tensor xq = x;
    qs.quantFwd(OpClass::kGemm, xq);

    // Epilogue mirrors the separate passes stage for stage. At most 3
    // quant stages: Linear's carrier, the tail's op-class point, the
    // tail's trailing carrier.
    GemmEpilogue epi;
    std::array<QuantHealth, 3> healths{};
    std::array<const char *, 3> points{};
    size_t nh = 0;
    const bool track = trace::collecting();
    auto quantStage = [&](const Quantizer &q, const char *point) {
        if (q.isIdentity())
            return;
        if (track) {
            points[nh] = point;
            epi.quant(&q, &healths[nh]);
            ++nh;
        } else {
            epi.quant(&q);
        }
    };

    epi.bias(bias.value.data());
    quantStage(cfg.carrier, "carrier");
    if (tail != nullptr && tail->activation_gelu) {
        // quantFwd(kActivation) + geluInPlace + carrier.
        if (cfg.activeFwd(OpClass::kActivation))
            quantStage(cfg.fwd, "fwd/activation");
        else
            quantStage(cfg.carrier, "carrier");
        epi.gelu();
        quantStage(cfg.carrier, "carrier");
    } else if (tail != nullptr && tail->residual != nullptr) {
        // Branch side of residualAdd: quantFwd(kResidual) + add against
        // the pre-quantized skip + carrier (IEEE addition commutes, so
        // branch + skip lands on the same bits as skip + branch).
        if (cfg.activeFwd(OpClass::kResidual))
            quantStage(cfg.fwd, "fwd/residual");
        else
            quantStage(cfg.carrier, "carrier");
        epi.residual(tail->residual);
        quantStage(cfg.carrier, "carrier");
    }

    Tensor y({xq.dim(0), out_});
    gemmQuantized(xq, false, packed_, true, y, 1.0f, 0.0f, &epi);
    for (size_t s = 0; s < nh; ++s)
        trace::healthAccumulate(points[s], healths[s]);

    // Inference-only: no activation cache for backward.
    xq_ = Tensor();
    wq_ = Tensor();
    packed_fwd_ = true;
    return y;
}

Tensor
Linear::forward(QuantSession &qs, const Tensor &x)
{
    if (packedUsable(qs))
        return forwardPacked(qs, x);
    packed_fwd_ = false;
    const bool head_fused = is_head_ && qs.config().fuse_head;
    xq_ = x;
    if (head_fused) {
        qs.carrier(xq_);
        wq_ = weight.value;
        qs.carrier(wq_);
    } else {
        qs.quantFwd(OpClass::kGemm, xq_);
        wq_ = effectiveWeight(qs);
    }

    Tensor y = matmul(xq_, wq_, false, true);
    addRowBias(y, bias.value);
    qs.carrier(y);
    return y;
}

Tensor
Linear::backward(QuantSession &qs, const Tensor &gy)
{
    if (packed_fwd_)
        throw std::logic_error(
            "Linear::backward: the weights_packed forward path is "
            "inference-only (no activation cache)");
    const bool head_fused = is_head_ && qs.config().fuse_head;
    Tensor gyq = gy;
    if (head_fused)
        qs.carrier(gyq);
    else
        qs.quantBwd(OpClass::kGemm, gyq, slot_);

    // Bias gradient (fused row-sum accumulate; same rounding as
    // sumRows + addInPlace without the temporary).
    if (bias.trainable)
        sumRowsAdd(bias.grad, gyq);

    if (!loraEnabled()) {
        if (weight.trainable) {
            // dW += gy^T . x  (wgrad GEMM, fused accumulation).
            gemm(gyq, true, xq_, false, weight.grad, 1.0f, 1.0f);
        }
    } else {
        // Straight-through gradients to the LoRA factors:
        // dB = alpha * gy^T (x A^T), dA = alpha * (gy B)^T x.
        const Tensor xa = matmul(xq_, aq_, false, true);     // [m, r]
        gemm(gyq, true, xa, false, lora_b.grad, lora_alpha_, 1.0f);
        const Tensor gyb = matmul(gyq, bq_, false, false);   // [m, r]
        gemm(gyb, true, xq_, false, lora_a.grad, lora_alpha_, 1.0f);
    }

    // dx = gy . W (dgrad GEMM).
    Tensor gx = matmul(gyq, wq_, false, false);
    qs.carrier(gx);
    return gx;
}

void
Linear::collectParams(ParamList &out)
{
    out.push_back(&weight);
    out.push_back(&bias);
    if (loraEnabled()) {
        out.push_back(&lora_a);
        out.push_back(&lora_b);
    }
}

} // namespace qt8
