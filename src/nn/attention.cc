#include "nn/attention.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/ops.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace qt8 {
namespace {

constexpr float kMaskValue = -1e9f;

/// Reserved code for NaN elements in packed KV panels. Eligibility
/// (QuantConfig::kvPackedFormat) caps grids at 255 values, so code 255
/// is always out of grid; its table entry decodes back to NaN.
constexpr uint8_t kKvNaNCode = 255;

/// Build a packed cache's 256-entry decode table: grid values as exact
/// doubles, NaN for every out-of-grid code so reserved or bit-flipped
/// codes decode non-finite and trip the serving engine's per-row guard.
std::vector<double>
buildKvTable(const Quantizer &q)
{
    std::vector<double> t(256,
                          std::numeric_limits<double>::quiet_NaN());
    const std::vector<float> &vals = q.gridValues();
    for (size_t i = 0; i < vals.size(); ++i)
        t[i] = static_cast<double>(vals[i]);
    return t;
}

/// Pack @p n contiguous elements straight to grid codes (the
/// pack-on-append path). The inputs already sit on @p q's grid — the
/// kGemm quant point applies the grid alone, no carrier after — so
/// decode(code) reproduces every element bit for bit; NaN (a poisoned
/// row) takes the reserved code, which decodes back to NaN. When a
/// trace is collecting, accumulates the `kv/pack` health point
/// (saturation/underflow are structurally zero here; count, amax and
/// nonfinite show what the cache absorbs).
void
packKvRow(const Quantizer &q, const float *src, uint8_t *dst, int64_t n)
{
    if (trace::collecting()) {
        QuantHealth h;
        for (int64_t i = 0; i < n; ++i) {
            const float x = src[i];
            ++h.count;
            if (std::isnan(x)) {
                ++h.nonfinite;
                dst[i] = kKvNaNCode;
            } else {
                const double a = std::fabs(static_cast<double>(x));
                if (a > h.amax)
                    h.amax = a;
                dst[i] = static_cast<uint8_t>(q.gridIndex(x));
            }
        }
        trace::healthAccumulate("kv/pack", h);
    } else {
        for (int64_t i = 0; i < n; ++i) {
            const float x = src[i];
            dst[i] = std::isnan(x)
                         ? kKvNaNCode
                         : static_cast<uint8_t>(q.gridIndex(x));
        }
    }
}

/// Work threshold (multiply-adds across all heads) below which the
/// batched attention loops stay serial.
constexpr int64_t kAttnParallelFlops = 16384;

/// Copy a head's slice out of a flat [rows, d_model] panel starting at
/// @p src (row-wise contiguous d_head runs) into dst [rows, d_head].
void
extractHeadRows(const float *src, int64_t rows, int64_t d_model,
                int64_t d_head, int h, Tensor &dst)
{
    const float *ps = src + h * d_head;
    float *pd = dst.data();
    for (int64_t r = 0; r < rows; ++r)
        std::copy_n(ps + r * d_model, d_head, pd + r * d_head);
}

/// Copy one head's slice of a flat [B*rows, d_model] tensor into
/// dst [rows, d_head].
void
extractHead(const Tensor &src, int64_t b, int64_t rows, int64_t d_head,
            int h, Tensor &dst)
{
    const int64_t d_model = src.dim(1);
    extractHeadRows(src.data() + b * rows * d_model, rows, d_model, d_head,
                    h, dst);
}

/// Accumulate a [rows, d_head] head tensor back into the flat layout.
void
scatterHeadAdd(Tensor &dst, int64_t b, int64_t rows, int64_t d_head, int h,
               const Tensor &src)
{
    const int64_t d_model = dst.dim(1);
    float *pd = dst.data() + b * rows * d_model + h * d_head;
    const float *ps = src.data();
    for (int64_t r = 0; r < rows; ++r) {
        float *drow = pd + r * d_model;
        const float *srow = ps + r * d_head;
        for (int64_t j = 0; j < d_head; ++j)
            drow[j] += srow[j];
    }
}

} // namespace

void
KVCache::reset(int64_t batch_size, int64_t cap, int64_t dm,
               const Quantizer *packed_fmt)
{
    batch = batch_size;
    capacity = cap;
    d_model = dm;
    len = 0;
    fmt = packed_fmt;
    if (packed()) {
        // The memory win: no fp32 panels at all, one code byte per
        // element. Codes beyond `len` are invisible (dirty is fine).
        k = Tensor();
        v = Tensor();
        k_codes.resize(
            static_cast<size_t>(batch * capacity * d_model));
        v_codes.resize(
            static_cast<size_t>(batch * capacity * d_model));
        table = buildKvTable(*fmt);
    } else {
        k_codes.clear();
        v_codes.clear();
        table.clear();
        k = Tensor({batch * capacity, d_model});
        v = Tensor({batch * capacity, d_model});
    }
}

bool
KVCache::append(const Tensor &k_rows, const Tensor &v_rows)
{
    if (len >= capacity)
        return false;
    assert(k_rows.dim(0) == batch && k_rows.dim(1) == d_model);
    for (int64_t b = 0; b < batch; ++b) {
        const int64_t dst = (b * capacity + len) * d_model;
        if (packed()) {
            packKvRow(*fmt, k_rows.data() + b * d_model,
                      k_codes.data() + dst, d_model);
            packKvRow(*fmt, v_rows.data() + b * d_model,
                      v_codes.data() + dst, d_model);
        } else {
            std::copy_n(k_rows.data() + b * d_model, d_model,
                        k.data() + dst);
            std::copy_n(v_rows.data() + b * d_model, d_model,
                        v.data() + dst);
        }
    }
    ++len;
    return true;
}

void
KVCache::fill(const Tensor &k_all, const Tensor &v_all, int64_t rows)
{
    assert(rows <= capacity);
    assert(k_all.dim(0) == batch * rows);
    for (int64_t b = 0; b < batch; ++b) {
        const int64_t src = b * rows * d_model;
        const int64_t dst = b * capacity * d_model;
        if (packed()) {
            packKvRow(*fmt, k_all.data() + src, k_codes.data() + dst,
                      rows * d_model);
            packKvRow(*fmt, v_all.data() + src, v_codes.data() + dst,
                      rows * d_model);
        } else {
            std::copy_n(k_all.data() + src, rows * d_model,
                        k.data() + dst);
            std::copy_n(v_all.data() + src, rows * d_model,
                        v.data() + dst);
        }
    }
    len = rows;
}

size_t
KVCache::residentBytes() const
{
    if (packed())
        return k_codes.size() + v_codes.size();
    return static_cast<size_t>(k.numel() + v.numel()) * sizeof(float);
}

void
KVSlots::reset(int64_t slots, int64_t cap, int64_t dm,
               const Quantizer *packed_fmt)
{
    n_slots = slots;
    capacity = cap;
    d_model = dm;
    len.assign(static_cast<size_t>(slots), 0);
    fmt = packed_fmt;
    if (packed()) {
        k = Tensor();
        v = Tensor();
        k_codes.resize(
            static_cast<size_t>(n_slots * capacity * d_model));
        v_codes.resize(
            static_cast<size_t>(n_slots * capacity * d_model));
        table = buildKvTable(*fmt);
    } else {
        k_codes.clear();
        v_codes.clear();
        table.clear();
        k = Tensor({n_slots * capacity, d_model});
        v = Tensor({n_slots * capacity, d_model});
    }
}

bool
KVSlots::append(int32_t slot, const float *k_row, const float *v_row)
{
    int64_t &l = len[static_cast<size_t>(slot)];
    if (l >= capacity)
        return false;
    const int64_t dst = (slot * capacity + l) * d_model;
    if (packed()) {
        packKvRow(*fmt, k_row, k_codes.data() + dst, d_model);
        packKvRow(*fmt, v_row, v_codes.data() + dst, d_model);
    } else {
        std::copy_n(k_row, d_model, k.data() + dst);
        std::copy_n(v_row, d_model, v.data() + dst);
    }
    ++l;
    return true;
}

void
KVSlots::fill(int32_t slot, const Tensor &k_all, const Tensor &v_all,
              int64_t rows)
{
    assert(rows <= capacity);
    assert(k_all.dim(0) == rows && k_all.dim(1) == d_model);
    const int64_t dst = slot * capacity * d_model;
    if (packed()) {
        packKvRow(*fmt, k_all.data(), k_codes.data() + dst,
                  rows * d_model);
        packKvRow(*fmt, v_all.data(), v_codes.data() + dst,
                  rows * d_model);
    } else {
        std::copy_n(k_all.data(), rows * d_model, k.data() + dst);
        std::copy_n(v_all.data(), rows * d_model, v.data() + dst);
    }
    len[static_cast<size_t>(slot)] = rows;
}

size_t
KVSlots::residentBytes() const
{
    if (packed())
        return k_codes.size() + v_codes.size();
    return static_cast<size_t>(k.numel() + v.numel()) * sizeof(float);
}

void
KVPagePanels::reset(int64_t pages, int64_t page_sz, int64_t dm,
                    const Quantizer *packed_fmt)
{
    n_pages = pages;
    page_size = page_sz;
    d_model = dm;
    fmt = packed_fmt;
    if (packed()) {
        k = Tensor();
        v = Tensor();
        k_codes.resize(
            static_cast<size_t>(n_pages * page_size * d_model));
        v_codes.resize(
            static_cast<size_t>(n_pages * page_size * d_model));
        table = buildKvTable(*fmt);
    } else {
        k_codes.clear();
        v_codes.clear();
        table.clear();
        k = Tensor({n_pages * page_size, d_model});
        v = Tensor({n_pages * page_size, d_model});
    }
}

void
KVPagePanels::writeRow(int32_t page, int64_t offset, const float *k_row,
                       const float *v_row)
{
    assert(page >= 0 && page < n_pages);
    assert(offset >= 0 && offset < page_size);
    const int64_t dst = (page * page_size + offset) * d_model;
    if (packed()) {
        packKvRow(*fmt, k_row, k_codes.data() + dst, d_model);
        packKvRow(*fmt, v_row, v_codes.data() + dst, d_model);
    } else {
        std::copy_n(k_row, d_model, k.data() + dst);
        std::copy_n(v_row, d_model, v.data() + dst);
    }
}

void
KVPagePanels::copyPageRows(int32_t src_page, int32_t dst_page,
                           int64_t rows)
{
    assert(rows <= page_size);
    const int64_t src = src_page * page_size * d_model;
    const int64_t dst = dst_page * page_size * d_model;
    const int64_t n = rows * d_model;
    if (packed()) {
        std::copy_n(k_codes.data() + src, n, k_codes.data() + dst);
        std::copy_n(v_codes.data() + src, n, v_codes.data() + dst);
    } else {
        std::copy_n(k.data() + src, n, k.data() + dst);
        std::copy_n(v.data() + src, n, v.data() + dst);
    }
}

size_t
KVPagePanels::residentBytes() const
{
    if (packed())
        return k_codes.size() + v_codes.size();
    return static_cast<size_t>(k.numel() + v.numel()) * sizeof(float);
}

MultiHeadAttention::MultiHeadAttention(int64_t d_model, int n_heads,
                                       BuildCtx &ctx,
                                       const std::string &name)
    : q_proj(d_model, d_model, ctx.rng, name + ".q", ctx.slot()),
      k_proj(d_model, d_model, ctx.rng, name + ".k", ctx.slot()),
      v_proj(d_model, d_model, ctx.rng, name + ".v", ctx.slot()),
      out_proj(d_model, d_model, ctx.rng, name + ".o", ctx.slot()),
      d_model_(d_model), n_heads_(n_heads), d_head_(d_model / n_heads),
      scale_(1.0f / std::sqrt(static_cast<float>(d_model / n_heads))),
      slot_ctx_(ctx.slot()), slot_act_(ctx.slot()), slot_scale_(ctx.slot())
{
    assert(d_model % n_heads == 0);
}

Tensor
MultiHeadAttention::forward(QuantSession &qs, const Tensor &x,
                            int64_t batch, int64_t seq_q,
                            const Tensor *memory, int64_t seq_kv,
                            const uint8_t *key_pad_mask, bool causal)
{
    QT8_TRACE_SCOPE("attn/forward");
    b_ = batch;
    sq_ = seq_q;
    self_attn_ = (memory == nullptr);
    skv_ = self_attn_ ? seq_q : seq_kv;
    const Tensor &kv_in = self_attn_ ? x : *memory;

    Tensor q = q_proj.forward(qs, x);
    Tensor k = k_proj.forward(qs, kv_in);
    Tensor v = v_proj.forward(qs, kv_in);

    // Q.K^T and P.V are GEMMs: quantize their inputs.
    qq_ = std::move(q);
    qs.quantFwd(OpClass::kGemm, qq_);
    kq_ = std::move(k);
    qs.quantFwd(OpClass::kGemm, kq_);
    vq_ = std::move(v);
    qs.quantFwd(OpClass::kGemm, vq_);

    const SoftmaxMode mode = qs.config().softmax;
    const bool use_approx = mode != SoftmaxMode::kExact;
    const int64_t prob_rows = batch * n_heads_ * seq_q;
    probs_ = Tensor({prob_rows, skv_});
    probs_q_ = Tensor({prob_rows, skv_});
    if (use_approx) {
        e_cache_ = Tensor({prob_rows, skv_});
        sums_.assign(static_cast<size_t>(prob_rows), 0.0);
    }

    const ApproxPositSoftmax approx_sm(
        *qs.config().softmax_spec, qs.config().approx_exp,
        mode == SoftmaxMode::kApproxExp || mode == SoftmaxMode::kApproxBoth,
        mode == SoftmaxMode::kApproxRecip ||
            mode == SoftmaxMode::kApproxBoth);

    Tensor ctx_flat({batch * seq_q, d_model_});

    // The (batch, head) iterations are fully independent: each writes a
    // disjoint probs_/probs_q_ row block and a disjoint (rows x d_head)
    // column slice of ctx_flat, and the quant points it hits are pure
    // element-wise maps, so the flattened loop parallelizes with
    // bit-identical results. The one session callback that must stay
    // ordered is fwd_tap (the distribution-study hook), so taps force
    // the serial path.
    const int64_t bh = batch * n_heads_;
    const bool par = !force_serial && !qs.fwd_tap && bh > 1 &&
                     kernelThreads() > 1 &&
                     bh * seq_q * skv_ * d_head_ > kAttnParallelFlops;
    double unscaled_amax = 0.0;

#pragma omp parallel if (par)
    {
        // Per-thread scratch (hoisted out of the loop: the seed code
        // re-allocated ph once per iteration).
        Tensor qh({seq_q, d_head_});
        Tensor kh({skv_, d_head_});
        Tensor vh({skv_, d_head_});
        Tensor scores({seq_q, skv_});
        Tensor ctx_h({seq_q, d_head_});
        Tensor ph({seq_q, skv_});
        double local_amax = 0.0;

#pragma omp for schedule(static)
        for (int64_t idx = 0; idx < bh; ++idx) {
            const int64_t b = idx / n_heads_;
            const int h = static_cast<int>(idx % n_heads_);
            extractHead(qq_, b, seq_q, d_head_, h, qh);
            extractHead(kq_, b, skv_, d_head_, h, kh);
            extractHead(vq_, b, skv_, d_head_, h, vh);

            gemm(qh, false, kh, true, scores);
            local_amax = std::max(local_amax, amax(scores));

            // Attention-scaling quant point: the *unscaled* Q.K^T
            // output is quantized unless fused with the GEMM.
            qs.quantFwd(OpClass::kAttnScaling, scores);
            scaleInPlace(scores, scale_);
            qs.carrier(scores);

            // Masking (before the softmax-input quantization so the
            // mask saturates to the format's most-negative value).
            if (causal || key_pad_mask != nullptr) {
                for (int64_t i = 0; i < seq_q; ++i) {
                    for (int64_t j = 0; j < skv_; ++j) {
                        const bool pad =
                            key_pad_mask != nullptr &&
                            key_pad_mask[b * skv_ + j] != 0;
                        const bool causal_blocked =
                            causal && self_attn_ && j > i;
                        if (pad || causal_blocked)
                            scores.at(i, j) = kMaskValue;
                    }
                }
            }

            // Activation quant point: softmax input.
            qs.quantFwd(OpClass::kActivation, scores);

            const int64_t row0 = (b * n_heads_ + h) * seq_q;
            if (!use_approx) {
                Tensor sm = scores;
                softmaxRowsInPlace(sm);
                qs.carrier(sm);
                // This head's probs_ rows are one contiguous block.
                std::copy_n(sm.data(), seq_q * skv_,
                            probs_.data() + row0 * skv_);
            } else {
                for (int64_t i = 0; i < seq_q; ++i) {
                    approx_sm.forward(
                        scores.data() + i * skv_,
                        probs_.data() + (row0 + i) * skv_,
                        static_cast<int>(skv_),
                        e_cache_.data() + (row0 + i) * skv_,
                        &sums_[static_cast<size_t>(row0 + i)]);
                }
            }

            // P.V GEMM: quantize P.
            std::copy_n(probs_.data() + row0 * skv_, seq_q * skv_,
                        ph.data());
            qs.quantFwd(OpClass::kGemm, ph);
            std::copy_n(ph.data(), seq_q * skv_,
                        probs_q_.data() + row0 * skv_);

            gemm(ph, false, vh, false, ctx_h);
            scatterHeadAdd(ctx_flat, b, seq_q, d_head_, h, ctx_h);
        }

#pragma omp critical
        unscaled_amax = std::max(unscaled_amax, local_amax);
    }
    last_unscaled_amax_ = unscaled_amax;

    qs.carrier(ctx_flat);
    return out_proj.forward(qs, ctx_flat);
}

Tensor
MultiHeadAttention::forwardIncremental(QuantSession &qs, const Tensor &x,
                                       int64_t batch, KVCache &cache,
                                       const Tensor *memory,
                                       int64_t seq_kv,
                                       const uint8_t *key_pad_mask)
{
    QT8_TRACE_SCOPE("attn/incremental");
    const bool self = (memory == nullptr);
    assert(x.dim(0) == batch && x.dim(1) == d_model_);
    assert(cache.batch == batch);

    Tensor q = q_proj.forward(qs, x);
    qs.quantFwd(OpClass::kGemm, q);

    if (self) {
        // Project and quantize only the newest position, then append:
        // the quant points are element-wise, so these rows carry the
        // same bits the full-prefix forward computes for them.
        Tensor k = k_proj.forward(qs, x);
        qs.quantFwd(OpClass::kGemm, k);
        Tensor v = v_proj.forward(qs, x);
        qs.quantFwd(OpClass::kGemm, v);
        cache.append(k, v);
    } else if (cache.len == 0) {
        // Cross-attention: prime once from the encoder memory.
        Tensor k = k_proj.forward(qs, *memory);
        qs.quantFwd(OpClass::kGemm, k);
        Tensor v = v_proj.forward(qs, *memory);
        qs.quantFwd(OpClass::kGemm, v);
        cache.fill(k, v, seq_kv);
    }
    const int64_t len = cache.len;

    const SoftmaxMode mode = qs.config().softmax;
    const bool use_approx = mode != SoftmaxMode::kExact;
    const ApproxPositSoftmax approx_sm(
        *qs.config().softmax_spec, qs.config().approx_exp,
        mode == SoftmaxMode::kApproxExp || mode == SoftmaxMode::kApproxBoth,
        mode == SoftmaxMode::kApproxRecip ||
            mode == SoftmaxMode::kApproxBoth);

    // Packed cache: the QK^T and attn.V GEMVs decode the uint8 codes
    // inside the micro-kernel (no fp32 head extract at all) and are
    // bit-identical to the extract+gemm path on the fp32 cache.
    const bool pk = cache.packed();
    PackedKvScratch scratch;

    Tensor ctx_flat({batch, d_model_});
    Tensor qh({1, d_head_});
    Tensor kh, vh;
    if (!pk) {
        kh = Tensor({len, d_head_});
        vh = Tensor({len, d_head_});
    }
    Tensor scores({1, len});
    Tensor ctx_h({1, d_head_});
    Tensor e_row({len});
    double sum_row = 0.0;

    for (int64_t b = 0; b < batch; ++b) {
        for (int h = 0; h < n_heads_; ++h) {
            extractHeadRows(q.data() + b * d_model_, 1, d_model_, d_head_,
                            h, qh);
            const int64_t base = b * cache.capacity * d_model_;
            if (pk) {
                packedDotRows(qh.data(),
                              cache.k_codes.data() + base + h * d_head_,
                              cache.table.data(), len, d_head_, d_model_,
                              scores.data(), scratch);
            } else {
                extractHeadRows(cache.k.data() + base, len, d_model_,
                                d_head_, h, kh);
                extractHeadRows(cache.v.data() + base, len, d_model_,
                                d_head_, h, vh);

                gemm(qh, false, kh, true, scores);
            }

            qs.quantFwd(OpClass::kAttnScaling, scores);
            scaleInPlace(scores, scale_);
            qs.carrier(scores);

            // No causal mask needed: the newest position is the last
            // one, so every cached key is visible. Cross-attention
            // padding masks apply as in the full forward.
            if (!self && key_pad_mask != nullptr) {
                for (int64_t j = 0; j < len; ++j) {
                    if (key_pad_mask[b * len + j] != 0)
                        scores.at(0, j) = kMaskValue;
                }
            }

            qs.quantFwd(OpClass::kActivation, scores);

            if (!use_approx) {
                softmaxRowsInPlace(scores);
                qs.carrier(scores);
            } else {
                Tensor probs({1, len});
                approx_sm.forward(scores.data(), probs.data(),
                                  static_cast<int>(len), e_row.data(),
                                  &sum_row);
                scores = std::move(probs);
            }

            qs.quantFwd(OpClass::kGemm, scores);
            if (pk) {
                packedAccumRows(scores.data(),
                                cache.v_codes.data() + base + h * d_head_,
                                cache.table.data(), len, d_head_,
                                d_model_, ctx_h.data(), scratch);
            } else {
                gemm(scores, false, vh, false, ctx_h);
            }
            scatterHeadAdd(ctx_flat, b, 1, d_head_, h, ctx_h);
        }
    }

    qs.carrier(ctx_flat);
    return out_proj.forward(qs, ctx_flat);
}

Tensor
MultiHeadAttention::forwardIncrementalSlots(QuantSession &qs,
                                            const Tensor &x,
                                            const std::vector<int32_t> &slots,
                                            KVSlots &cache, bool self,
                                            const uint8_t *const
                                                *key_pad_masks)
{
    QT8_TRACE_SCOPE("attn/incremental_slots");
    const int64_t n = x.dim(0);
    assert(static_cast<int64_t>(slots.size()) == n);
    assert(x.dim(1) == d_model_);

    Tensor q = q_proj.forward(qs, x);
    qs.quantFwd(OpClass::kGemm, q);

    if (self) {
        // Project and quantize the newest position of every gathered
        // sequence in one [n, d] pass (row-independent), then scatter
        // each row into its slot. The rows carry the same bits a solo
        // decode computes for them: all forward quant points round
        // element-wise on static grids.
        Tensor k = k_proj.forward(qs, x);
        qs.quantFwd(OpClass::kGemm, k);
        Tensor v = v_proj.forward(qs, x);
        qs.quantFwd(OpClass::kGemm, v);
        for (int64_t i = 0; i < n; ++i) {
            const bool ok =
                cache.append(slots[static_cast<size_t>(i)],
                             k.data() + i * d_model_,
                             v.data() + i * d_model_);
            assert(ok && "scheduler must check canAppend before stepping");
            (void)ok;
        }
    }

    const SoftmaxMode mode = qs.config().softmax;
    const bool use_approx = mode != SoftmaxMode::kExact;
    const ApproxPositSoftmax approx_sm(
        *qs.config().softmax_spec, qs.config().approx_exp,
        mode == SoftmaxMode::kApproxExp || mode == SoftmaxMode::kApproxBoth,
        mode == SoftmaxMode::kApproxRecip ||
            mode == SoftmaxMode::kApproxBoth);

    // Packed pool: decode codes inside the GEMV micro-kernels, exactly
    // as in forwardIncremental (bit-identical to the fp32 pool).
    const bool pk = cache.packed();
    PackedKvScratch scratch;

    Tensor ctx_flat({n, d_model_});
    Tensor qh({1, d_head_});
    Tensor ctx_h({1, d_head_});
    double sum_row = 0.0;

    for (int64_t i = 0; i < n; ++i) {
        const int32_t slot = slots[static_cast<size_t>(i)];
        const int64_t len = cache.len[static_cast<size_t>(slot)];
        assert(len > 0 && "cross-attention slots must be primed");
        const uint8_t *pad =
            key_pad_masks != nullptr ? key_pad_masks[i] : nullptr;
        const int64_t base = slot * cache.capacity * d_model_;
        Tensor kh, vh;
        if (!pk) {
            kh = Tensor({len, d_head_});
            vh = Tensor({len, d_head_});
        }
        Tensor scores({1, len});
        Tensor e_row({len});

        for (int h = 0; h < n_heads_; ++h) {
            extractHeadRows(q.data() + i * d_model_, 1, d_model_, d_head_,
                            h, qh);
            if (pk) {
                packedDotRows(qh.data(),
                              cache.k_codes.data() + base + h * d_head_,
                              cache.table.data(), len, d_head_, d_model_,
                              scores.data(), scratch);
            } else {
                extractHeadRows(cache.k.data() + base, len, d_model_,
                                d_head_, h, kh);
                extractHeadRows(cache.v.data() + base, len, d_model_,
                                d_head_, h, vh);

                gemm(qh, false, kh, true, scores);
            }

            qs.quantFwd(OpClass::kAttnScaling, scores);
            scaleInPlace(scores, scale_);
            qs.carrier(scores);

            // Self-attention needs no mask (the newest position sees
            // every cached one plus itself); cross-attention applies
            // the per-sequence source padding mask.
            if (!self && pad != nullptr) {
                for (int64_t j = 0; j < len; ++j) {
                    if (pad[j] != 0)
                        scores.at(0, j) = kMaskValue;
                }
            }

            qs.quantFwd(OpClass::kActivation, scores);

            if (!use_approx) {
                softmaxRowsInPlace(scores);
                qs.carrier(scores);
            } else {
                Tensor probs({1, len});
                approx_sm.forward(scores.data(), probs.data(),
                                  static_cast<int>(len), e_row.data(),
                                  &sum_row);
                scores = std::move(probs);
            }

            qs.quantFwd(OpClass::kGemm, scores);
            if (pk) {
                packedAccumRows(scores.data(),
                                cache.v_codes.data() + base + h * d_head_,
                                cache.table.data(), len, d_head_,
                                d_model_, ctx_h.data(), scratch);
            } else {
                gemm(scores, false, vh, false, ctx_h);
            }
            scatterHeadAdd(ctx_flat, i, 1, d_head_, h, ctx_h);
        }
    }

    qs.carrier(ctx_flat);
    return out_proj.forward(qs, ctx_flat);
}

bool
MultiHeadAttention::primeSlot(QuantSession &qs, const Tensor &memory,
                              int64_t rows, KVSlots &cache, int32_t slot)
{
    if (rows > cache.capacity)
        return false;
    Tensor k = k_proj.forward(qs, memory);
    qs.quantFwd(OpClass::kGemm, k);
    Tensor v = v_proj.forward(qs, memory);
    qs.quantFwd(OpClass::kGemm, v);
    cache.fill(slot, k, v, rows);
    return true;
}

namespace {

/// extractHeadRows through a page table: logical row r is gathered
/// from physical row pages[r / ps] * ps + r % ps of the arena panel.
void
extractHeadRowsPaged(const float *src, const int32_t *pages, int64_t ps,
                     int64_t rows, int64_t d_model, int64_t d_head,
                     int h, Tensor &dst)
{
    float *pd = dst.data();
    for (int64_t r = 0; r < rows; ++r) {
        const int64_t phys =
            static_cast<int64_t>(pages[r / ps]) * ps + r % ps;
        std::copy_n(src + phys * d_model + h * d_head, d_head,
                    pd + r * d_head);
    }
}

} // namespace

Tensor
MultiHeadAttention::forwardPagedRows(QuantSession &qs, const Tensor &x,
                                     const std::vector<PagedRowRef> &rows,
                                     KVPagePanels &cache, bool self,
                                     const uint8_t *const *key_pad_masks)
{
    QT8_TRACE_SCOPE("attn/paged_rows");
    const int64_t n = x.dim(0);
    assert(static_cast<int64_t>(rows.size()) == n);
    assert(x.dim(1) == d_model_);
    const int64_t ps = cache.page_size;

    Tensor q = q_proj.forward(qs, x);
    qs.quantFwd(OpClass::kGemm, q);

    if (self) {
        // Project and quantize every gathered row in one [n, d] pass,
        // then write each through its page table *before* any scores
        // are computed: a prompt chunk's later rows see its earlier
        // ones exactly as the token-by-token schedule would, and the
        // rows carry the same bits (element-wise static-grid quant).
        Tensor k = k_proj.forward(qs, x);
        qs.quantFwd(OpClass::kGemm, k);
        Tensor v = v_proj.forward(qs, x);
        qs.quantFwd(OpClass::kGemm, v);
        for (int64_t i = 0; i < n; ++i) {
            const PagedRowRef &ref = rows[static_cast<size_t>(i)];
            assert(ref.pos / ps < ref.n_pages &&
                   "page table must cover the written row");
            cache.writeRow(ref.pages[ref.pos / ps], ref.pos % ps,
                           k.data() + i * d_model_,
                           v.data() + i * d_model_);
        }
    }

    const SoftmaxMode mode = qs.config().softmax;
    const bool use_approx = mode != SoftmaxMode::kExact;
    const ApproxPositSoftmax approx_sm(
        *qs.config().softmax_spec, qs.config().approx_exp,
        mode == SoftmaxMode::kApproxExp || mode == SoftmaxMode::kApproxBoth,
        mode == SoftmaxMode::kApproxRecip ||
            mode == SoftmaxMode::kApproxBoth);

    const bool pk = cache.packed();
    PackedKvScratch scratch;

    Tensor ctx_flat({n, d_model_});
    Tensor qh({1, d_head_});
    Tensor ctx_h({1, d_head_});
    double sum_row = 0.0;

    for (int64_t i = 0; i < n; ++i) {
        const PagedRowRef &ref = rows[static_cast<size_t>(i)];
        const int64_t len = ref.visible;
        assert(len > 0 && "rows must attend at least themselves");
        assert((len + ps - 1) / ps <= ref.n_pages);
        const uint8_t *pad =
            key_pad_masks != nullptr ? key_pad_masks[i] : nullptr;
        Tensor kh, vh;
        if (!pk) {
            kh = Tensor({len, d_head_});
            vh = Tensor({len, d_head_});
        }
        Tensor scores({1, len});
        Tensor e_row({len});

        for (int h = 0; h < n_heads_; ++h) {
            extractHeadRows(q.data() + i * d_model_, 1, d_model_, d_head_,
                            h, qh);
            if (pk) {
                packedDotRowsPaged(qh.data(),
                                   cache.k_codes.data() + h * d_head_,
                                   cache.table.data(), ref.pages, ps,
                                   len, d_head_, d_model_, scores.data(),
                                   scratch);
            } else {
                extractHeadRowsPaged(cache.k.data(), ref.pages, ps, len,
                                     d_model_, d_head_, h, kh);
                extractHeadRowsPaged(cache.v.data(), ref.pages, ps, len,
                                     d_model_, d_head_, h, vh);

                gemm(qh, false, kh, true, scores);
            }

            qs.quantFwd(OpClass::kAttnScaling, scores);
            scaleInPlace(scores, scale_);
            qs.carrier(scores);

            // Self-attention rows see exactly their first `visible`
            // cached positions (causality via the visibility bound);
            // cross-attention applies the source padding mask.
            if (!self && pad != nullptr) {
                for (int64_t j = 0; j < len; ++j) {
                    if (pad[j] != 0)
                        scores.at(0, j) = kMaskValue;
                }
            }

            qs.quantFwd(OpClass::kActivation, scores);

            if (!use_approx) {
                softmaxRowsInPlace(scores);
                qs.carrier(scores);
            } else {
                Tensor probs({1, len});
                approx_sm.forward(scores.data(), probs.data(),
                                  static_cast<int>(len), e_row.data(),
                                  &sum_row);
                scores = std::move(probs);
            }

            qs.quantFwd(OpClass::kGemm, scores);
            if (pk) {
                packedAccumRowsPaged(scores.data(),
                                     cache.v_codes.data() + h * d_head_,
                                     cache.table.data(), ref.pages, ps,
                                     len, d_head_, d_model_, ctx_h.data(),
                                     scratch);
            } else {
                gemm(scores, false, vh, false, ctx_h);
            }
            scatterHeadAdd(ctx_flat, i, 1, d_head_, h, ctx_h);
        }
    }

    qs.carrier(ctx_flat);
    return out_proj.forward(qs, ctx_flat);
}

bool
MultiHeadAttention::primePages(QuantSession &qs, const Tensor &memory,
                               int64_t rows, KVPagePanels &cache,
                               const int32_t *pages, int64_t n_pages)
{
    if (rows > n_pages * cache.page_size)
        return false;
    Tensor k = k_proj.forward(qs, memory);
    qs.quantFwd(OpClass::kGemm, k);
    Tensor v = v_proj.forward(qs, memory);
    qs.quantFwd(OpClass::kGemm, v);
    const int64_t ps = cache.page_size;
    for (int64_t r = 0; r < rows; ++r)
        cache.writeRow(pages[r / ps], r % ps, k.data() + r * d_model_,
                       v.data() + r * d_model_);
    return true;
}

Tensor
MultiHeadAttention::backward(QuantSession &qs, const Tensor &gy,
                             Tensor *gmemory)
{
    QT8_TRACE_SCOPE("attn/backward");
    const SoftmaxMode mode = qs.config().softmax;
    const bool use_approx = mode != SoftmaxMode::kExact;
    const ApproxPositSoftmax approx_sm(
        *qs.config().softmax_spec, qs.config().approx_exp,
        mode == SoftmaxMode::kApproxExp || mode == SoftmaxMode::kApproxBoth,
        mode == SoftmaxMode::kApproxRecip ||
            mode == SoftmaxMode::kApproxBoth);

    Tensor gctx = out_proj.backward(qs, gy);
    qs.quantBwd(OpClass::kGemm, gctx, slot_ctx_);

    const int64_t prob_rows = b_ * n_heads_ * sq_;
    Tensor dprobs({prob_rows, skv_});
    Tensor gv_flat({b_ * skv_, d_model_});

    const int64_t bh = b_ * n_heads_;
    // Same independence argument as the forward loop; the backward
    // phases touch no session state at all (the quantBwd points sit
    // between phases, on whole tensors).
    const bool par = !force_serial && bh > 1 && kernelThreads() > 1 &&
                     bh * sq_ * skv_ * d_head_ > kAttnParallelFlops;

    // Phase 1: dP = gCtx . V^T and dV = P^T . gCtx per head.
#pragma omp parallel if (par)
    {
        Tensor gctx_h({sq_, d_head_});
        Tensor vh({skv_, d_head_});
        Tensor ph({sq_, skv_});
        Tensor dph({sq_, skv_});
        Tensor dvh({skv_, d_head_});

#pragma omp for schedule(static)
        for (int64_t idx = 0; idx < bh; ++idx) {
            const int64_t b = idx / n_heads_;
            const int h = static_cast<int>(idx % n_heads_);
            extractHead(gctx, b, sq_, d_head_, h, gctx_h);
            extractHead(vq_, b, skv_, d_head_, h, vh);
            const int64_t row0 = (b * n_heads_ + h) * sq_;
            std::copy_n(probs_q_.data() + row0 * skv_, sq_ * skv_,
                        ph.data());

            gemm(gctx_h, false, vh, true, dph);
            std::copy_n(dph.data(), sq_ * skv_,
                        dprobs.data() + row0 * skv_);

            gemm(ph, true, gctx_h, false, dvh);
            scatterHeadAdd(gv_flat, b, skv_, d_head_, h, dvh);
        }
    }

    // Phase 2: softmax backward over every row, then the activation and
    // attention-scaling backward quant points on the whole tensors.
    Tensor dscaled({prob_rows, skv_});
#pragma omp parallel for schedule(static) if (par)
    for (int64_t r = 0; r < prob_rows; ++r) {
        if (!use_approx) {
            double dot = 0.0;
            for (int64_t j = 0; j < skv_; ++j)
                dot += static_cast<double>(dprobs.at(r, j)) *
                       probs_.at(r, j);
            for (int64_t j = 0; j < skv_; ++j) {
                dscaled.at(r, j) = static_cast<float>(
                    probs_.at(r, j) *
                    (static_cast<double>(dprobs.at(r, j)) - dot));
            }
        } else {
            approx_sm.backward(dprobs.data() + r * skv_,
                               probs_.data() + r * skv_,
                               e_cache_.data() + r * skv_,
                               sums_[static_cast<size_t>(r)],
                               dscaled.data() + r * skv_,
                               static_cast<int>(skv_));
        }
    }
    qs.quantBwd(OpClass::kActivation, dscaled, slot_act_);

    scaleInPlace(dscaled, scale_);
    qs.quantBwd(OpClass::kAttnScaling, dscaled, slot_scale_);

    // Phase 3: dQ = dS . K, dK = dS^T . Q per head.
    Tensor gq_flat({b_ * sq_, d_model_});
    Tensor gk_flat({b_ * skv_, d_model_});
#pragma omp parallel if (par)
    {
        Tensor qh({sq_, d_head_});
        Tensor kh({skv_, d_head_});
        Tensor ds({sq_, skv_});
        Tensor dqh({sq_, d_head_});
        Tensor dkh({skv_, d_head_});

#pragma omp for schedule(static)
        for (int64_t idx = 0; idx < bh; ++idx) {
            const int64_t b = idx / n_heads_;
            const int h = static_cast<int>(idx % n_heads_);
            extractHead(qq_, b, sq_, d_head_, h, qh);
            extractHead(kq_, b, skv_, d_head_, h, kh);
            const int64_t row0 = (b * n_heads_ + h) * sq_;
            std::copy_n(dscaled.data() + row0 * skv_, sq_ * skv_,
                        ds.data());
            gemm(ds, false, kh, false, dqh);
            gemm(ds, true, qh, false, dkh);
            scatterHeadAdd(gq_flat, b, sq_, d_head_, h, dqh);
            scatterHeadAdd(gk_flat, b, skv_, d_head_, h, dkh);
        }
    }

    Tensor gx = q_proj.backward(qs, gq_flat);
    const Tensor gk_in = k_proj.backward(qs, gk_flat);
    const Tensor gv_in = v_proj.backward(qs, gv_flat);
    if (self_attn_) {
        addInPlace(gx, gk_in);
        addInPlace(gx, gv_in);
        qs.carrier(gx);
        return gx;
    }
    assert(gmemory != nullptr);
    addInPlace(*gmemory, gk_in);
    addInPlace(*gmemory, gv_in);
    qs.carrier(gx);
    return gx;
}

void
MultiHeadAttention::collectParams(ParamList &out)
{
    q_proj.collectParams(out);
    k_proj.collectParams(out);
    v_proj.collectParams(out);
    out_proj.collectParams(out);
}

void
MultiHeadAttention::enableLora(int rank, float alpha, Rng &rng,
                               bool all_proj)
{
    q_proj.enableLora(rank, alpha, rng);
    v_proj.enableLora(rank, alpha, rng);
    if (all_proj) {
        k_proj.enableLora(rank, alpha, rng);
        out_proj.enableLora(rank, alpha, rng);
    } else {
        // Frozen non-LoRA layers still must not train.
        k_proj.weight.trainable = false;
        k_proj.bias.trainable = false;
        out_proj.weight.trainable = false;
        out_proj.bias.trainable = false;
    }
}

} // namespace qt8
