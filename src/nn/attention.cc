#include "nn/attention.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/ops.h"

namespace qt8 {
namespace {

constexpr float kMaskValue = -1e9f;

/// Copy one head's slice of a flat [B*rows, d_model] tensor into
/// dst [rows, d_head].
void
extractHead(const Tensor &src, int64_t b, int64_t rows, int64_t d_head,
            int h, Tensor &dst)
{
    const int64_t d_model = src.dim(1);
    const float *ps = src.data() + b * rows * d_model + h * d_head;
    float *pd = dst.data();
    for (int64_t r = 0; r < rows; ++r)
        for (int64_t j = 0; j < d_head; ++j)
            pd[r * d_head + j] = ps[r * d_model + j];
}

/// Accumulate a [rows, d_head] head tensor back into the flat layout.
void
scatterHeadAdd(Tensor &dst, int64_t b, int64_t rows, int64_t d_head, int h,
               const Tensor &src)
{
    const int64_t d_model = dst.dim(1);
    float *pd = dst.data() + b * rows * d_model + h * d_head;
    const float *ps = src.data();
    for (int64_t r = 0; r < rows; ++r)
        for (int64_t j = 0; j < d_head; ++j)
            pd[r * d_model + j] += ps[r * d_head + j];
}

} // namespace

MultiHeadAttention::MultiHeadAttention(int64_t d_model, int n_heads,
                                       BuildCtx &ctx,
                                       const std::string &name)
    : q_proj(d_model, d_model, ctx.rng, name + ".q", ctx.slot()),
      k_proj(d_model, d_model, ctx.rng, name + ".k", ctx.slot()),
      v_proj(d_model, d_model, ctx.rng, name + ".v", ctx.slot()),
      out_proj(d_model, d_model, ctx.rng, name + ".o", ctx.slot()),
      d_model_(d_model), n_heads_(n_heads), d_head_(d_model / n_heads),
      scale_(1.0f / std::sqrt(static_cast<float>(d_model / n_heads))),
      slot_ctx_(ctx.slot()), slot_act_(ctx.slot()), slot_scale_(ctx.slot())
{
    assert(d_model % n_heads == 0);
}

Tensor
MultiHeadAttention::forward(QuantSession &qs, const Tensor &x,
                            int64_t batch, int64_t seq_q,
                            const Tensor *memory, int64_t seq_kv,
                            const uint8_t *key_pad_mask, bool causal)
{
    b_ = batch;
    sq_ = seq_q;
    self_attn_ = (memory == nullptr);
    skv_ = self_attn_ ? seq_q : seq_kv;
    const Tensor &kv_in = self_attn_ ? x : *memory;

    Tensor q = q_proj.forward(qs, x);
    Tensor k = k_proj.forward(qs, kv_in);
    Tensor v = v_proj.forward(qs, kv_in);

    // Q.K^T and P.V are GEMMs: quantize their inputs.
    qq_ = std::move(q);
    qs.quantFwd(OpClass::kGemm, qq_);
    kq_ = std::move(k);
    qs.quantFwd(OpClass::kGemm, kq_);
    vq_ = std::move(v);
    qs.quantFwd(OpClass::kGemm, vq_);

    const SoftmaxMode mode = qs.config().softmax;
    const bool use_approx = mode != SoftmaxMode::kExact;
    const int64_t prob_rows = batch * n_heads_ * seq_q;
    probs_ = Tensor({prob_rows, skv_});
    probs_q_ = Tensor({prob_rows, skv_});
    if (use_approx) {
        e_cache_ = Tensor({prob_rows, skv_});
        sums_.assign(static_cast<size_t>(prob_rows), 0.0);
    }

    const ApproxPositSoftmax approx_sm(
        *qs.config().softmax_spec, qs.config().approx_exp,
        mode == SoftmaxMode::kApproxExp || mode == SoftmaxMode::kApproxBoth,
        mode == SoftmaxMode::kApproxRecip ||
            mode == SoftmaxMode::kApproxBoth);

    Tensor ctx_flat({batch * seq_q, d_model_});
    Tensor qh({seq_q, d_head_});
    Tensor kh({skv_, d_head_});
    Tensor vh({skv_, d_head_});
    Tensor scores({seq_q, skv_});
    Tensor ctx_h({seq_q, d_head_});
    last_unscaled_amax_ = 0.0;

    for (int64_t b = 0; b < batch; ++b) {
        for (int h = 0; h < n_heads_; ++h) {
            extractHead(qq_, b, seq_q, d_head_, h, qh);
            extractHead(kq_, b, skv_, d_head_, h, kh);
            extractHead(vq_, b, skv_, d_head_, h, vh);

            gemm(qh, false, kh, true, scores);
            last_unscaled_amax_ =
                std::max(last_unscaled_amax_, amax(scores));

            // Attention-scaling quant point: the *unscaled* Q.K^T
            // output is quantized unless fused with the GEMM.
            qs.quantFwd(OpClass::kAttnScaling, scores);
            scaleInPlace(scores, scale_);
            qs.carrier(scores);

            // Masking (before the softmax-input quantization so the
            // mask saturates to the format's most-negative value).
            if (causal || key_pad_mask != nullptr) {
                for (int64_t i = 0; i < seq_q; ++i) {
                    for (int64_t j = 0; j < skv_; ++j) {
                        const bool pad =
                            key_pad_mask != nullptr &&
                            key_pad_mask[b * skv_ + j] != 0;
                        const bool causal_blocked =
                            causal && self_attn_ && j > i;
                        if (pad || causal_blocked)
                            scores.at(i, j) = kMaskValue;
                    }
                }
            }

            // Activation quant point: softmax input.
            qs.quantFwd(OpClass::kActivation, scores);

            const int64_t row0 = (b * n_heads_ + h) * seq_q;
            if (!use_approx) {
                Tensor sm = scores;
                softmaxRowsInPlace(sm);
                qs.carrier(sm);
                // This head's probs_ rows are one contiguous block.
                std::copy_n(sm.data(), seq_q * skv_,
                            probs_.data() + row0 * skv_);
            } else {
                for (int64_t i = 0; i < seq_q; ++i) {
                    approx_sm.forward(
                        scores.data() + i * skv_,
                        probs_.data() + (row0 + i) * skv_,
                        static_cast<int>(skv_),
                        e_cache_.data() + (row0 + i) * skv_,
                        &sums_[static_cast<size_t>(row0 + i)]);
                }
            }

            // P.V GEMM: quantize P.
            Tensor ph({seq_q, skv_});
            std::copy_n(probs_.data() + row0 * skv_, seq_q * skv_,
                        ph.data());
            qs.quantFwd(OpClass::kGemm, ph);
            std::copy_n(ph.data(), seq_q * skv_,
                        probs_q_.data() + row0 * skv_);

            gemm(ph, false, vh, false, ctx_h);
            scatterHeadAdd(ctx_flat, b, seq_q, d_head_, h, ctx_h);
        }
    }

    qs.carrier(ctx_flat);
    return out_proj.forward(qs, ctx_flat);
}

Tensor
MultiHeadAttention::backward(QuantSession &qs, const Tensor &gy,
                             Tensor *gmemory)
{
    const SoftmaxMode mode = qs.config().softmax;
    const bool use_approx = mode != SoftmaxMode::kExact;
    const ApproxPositSoftmax approx_sm(
        *qs.config().softmax_spec, qs.config().approx_exp,
        mode == SoftmaxMode::kApproxExp || mode == SoftmaxMode::kApproxBoth,
        mode == SoftmaxMode::kApproxRecip ||
            mode == SoftmaxMode::kApproxBoth);

    Tensor gctx = out_proj.backward(qs, gy);
    qs.quantBwd(OpClass::kGemm, gctx, slot_ctx_);

    const int64_t prob_rows = b_ * n_heads_ * sq_;
    Tensor dprobs({prob_rows, skv_});
    Tensor gv_flat({b_ * skv_, d_model_});

    Tensor gctx_h({sq_, d_head_});
    Tensor vh({skv_, d_head_});
    Tensor ph({sq_, skv_});
    Tensor dph({sq_, skv_});
    Tensor dvh({skv_, d_head_});

    // Phase 1: dP = gCtx . V^T and dV = P^T . gCtx per head.
    for (int64_t b = 0; b < b_; ++b) {
        for (int h = 0; h < n_heads_; ++h) {
            extractHead(gctx, b, sq_, d_head_, h, gctx_h);
            extractHead(vq_, b, skv_, d_head_, h, vh);
            const int64_t row0 = (b * n_heads_ + h) * sq_;
            std::copy_n(probs_q_.data() + row0 * skv_, sq_ * skv_,
                        ph.data());

            gemm(gctx_h, false, vh, true, dph);
            std::copy_n(dph.data(), sq_ * skv_,
                        dprobs.data() + row0 * skv_);

            gemm(ph, true, gctx_h, false, dvh);
            scatterHeadAdd(gv_flat, b, skv_, d_head_, h, dvh);
        }
    }

    // Phase 2: softmax backward over every row, then the activation and
    // attention-scaling backward quant points on the whole tensors.
    Tensor dscaled({prob_rows, skv_});
    for (int64_t r = 0; r < prob_rows; ++r) {
        if (!use_approx) {
            double dot = 0.0;
            for (int64_t j = 0; j < skv_; ++j)
                dot += static_cast<double>(dprobs.at(r, j)) *
                       probs_.at(r, j);
            for (int64_t j = 0; j < skv_; ++j) {
                dscaled.at(r, j) = static_cast<float>(
                    probs_.at(r, j) *
                    (static_cast<double>(dprobs.at(r, j)) - dot));
            }
        } else {
            approx_sm.backward(dprobs.data() + r * skv_,
                               probs_.data() + r * skv_,
                               e_cache_.data() + r * skv_,
                               sums_[static_cast<size_t>(r)],
                               dscaled.data() + r * skv_,
                               static_cast<int>(skv_));
        }
    }
    qs.quantBwd(OpClass::kActivation, dscaled, slot_act_);

    scaleInPlace(dscaled, scale_);
    qs.quantBwd(OpClass::kAttnScaling, dscaled, slot_scale_);

    // Phase 3: dQ = dS . K, dK = dS^T . Q per head.
    Tensor gq_flat({b_ * sq_, d_model_});
    Tensor gk_flat({b_ * skv_, d_model_});
    Tensor qh({sq_, d_head_});
    Tensor kh({skv_, d_head_});
    Tensor ds({sq_, skv_});
    Tensor dqh({sq_, d_head_});
    Tensor dkh({skv_, d_head_});
    for (int64_t b = 0; b < b_; ++b) {
        for (int h = 0; h < n_heads_; ++h) {
            extractHead(qq_, b, sq_, d_head_, h, qh);
            extractHead(kq_, b, skv_, d_head_, h, kh);
            const int64_t row0 = (b * n_heads_ + h) * sq_;
            std::copy_n(dscaled.data() + row0 * skv_, sq_ * skv_,
                        ds.data());
            gemm(ds, false, kh, false, dqh);
            gemm(ds, true, qh, false, dkh);
            scatterHeadAdd(gq_flat, b, sq_, d_head_, h, dqh);
            scatterHeadAdd(gk_flat, b, skv_, d_head_, h, dkh);
        }
    }

    Tensor gx = q_proj.backward(qs, gq_flat);
    const Tensor gk_in = k_proj.backward(qs, gk_flat);
    const Tensor gv_in = v_proj.backward(qs, gv_flat);
    if (self_attn_) {
        addInPlace(gx, gk_in);
        addInPlace(gx, gv_in);
        qs.carrier(gx);
        return gx;
    }
    assert(gmemory != nullptr);
    addInPlace(*gmemory, gk_in);
    addInPlace(*gmemory, gv_in);
    qs.carrier(gx);
    return gx;
}

void
MultiHeadAttention::collectParams(ParamList &out)
{
    q_proj.collectParams(out);
    k_proj.collectParams(out);
    v_proj.collectParams(out);
    out_proj.collectParams(out);
}

void
MultiHeadAttention::enableLora(int rank, float alpha, Rng &rng,
                               bool all_proj)
{
    q_proj.enableLora(rank, alpha, rng);
    v_proj.enableLora(rank, alpha, rng);
    if (all_proj) {
        k_proj.enableLora(rank, alpha, rng);
        out_proj.enableLora(rank, alpha, rng);
    } else {
        // Frozen non-LoRA layers still must not train.
        k_proj.weight.trainable = false;
        k_proj.bias.trainable = false;
        out_proj.weight.trainable = false;
        out_proj.bias.trainable = false;
    }
}

} // namespace qt8
