/**
 * @file
 * Token + learned positional embedding.
 */
#ifndef QT8_NN_EMBEDDING_H
#define QT8_NN_EMBEDDING_H

#include <cstdint>
#include <vector>

#include "nn/param.h"
#include "quant/config.h"
#include "tensor/random.h"

namespace qt8 {

/// x[b,s,:] = tok[id[b,s],:] + pos[s,:], flattened to [B*S, d].
class Embedding
{
  public:
    Embedding() = default;

    Embedding(int64_t vocab, int64_t max_seq, int64_t dim, Rng &rng,
              const std::string &name);

    /// ids has B*S entries; returns [B*S, dim]. @p pos_offset shifts
    /// the positional-table index (incremental decode embeds one token
    /// per sequence at its absolute position pos_offset + s).
    Tensor forward(QuantSession &qs, const std::vector<int32_t> &ids,
                   int64_t batch, int64_t seq, int64_t pos_offset = 0);

    /// Ragged-position lookup for continuous batching: row i embeds
    /// token ids[i] at absolute position positions[i] (sequences in a
    /// pooled decode step generally sit at different positions).
    /// Inference-only: does not touch the backward cache. Returns
    /// [n, dim], bit-identical row-wise to forward() at the same
    /// (id, position) pairs.
    Tensor forwardAt(QuantSession &qs, const std::vector<int32_t> &ids,
                     const std::vector<int64_t> &positions);

    /// Accumulates gradients into the embedding tables.
    void backward(QuantSession &qs, const Tensor &gy);

    void collectParams(ParamList &out);

    /// Freeze both tables (LoRA fine-tuning trains adapters only).
    void freeze();

    Param tok; ///< [vocab, dim]
    Param pos; ///< [max_seq, dim]

  private:
    int64_t dim_ = 0;
    std::vector<int32_t> cached_ids_;
    int64_t cached_seq_ = 0;
    int64_t cached_offset_ = 0;
};

} // namespace qt8

#endif // QT8_NN_EMBEDDING_H
