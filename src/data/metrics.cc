#include "data/metrics.h"

#include <algorithm>
#include <cmath>

namespace qt8 {

int64_t
editDistance(const std::vector<int32_t> &a, const std::vector<int32_t> &b)
{
    const size_t n = a.size();
    const size_t m = b.size();
    std::vector<int64_t> prev(m + 1), cur(m + 1);
    for (size_t j = 0; j <= m; ++j)
        prev[j] = static_cast<int64_t>(j);
    for (size_t i = 1; i <= n; ++i) {
        cur[0] = static_cast<int64_t>(i);
        for (size_t j = 1; j <= m; ++j) {
            const int64_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

double
wordErrorRate(const std::vector<std::vector<int32_t>> &hyps,
              const std::vector<std::vector<int32_t>> &refs)
{
    int64_t errors = 0;
    int64_t total = 0;
    for (size_t i = 0; i < refs.size(); ++i) {
        errors += editDistance(hyps[i], refs[i]);
        total += static_cast<int64_t>(refs[i].size());
    }
    return total > 0 ? static_cast<double>(errors) / total : 0.0;
}

double
spanOverlapF1(int64_t ps, int64_t pe, int64_t gs, int64_t ge)
{
    const int64_t lo = std::max(ps, gs);
    const int64_t hi = std::min(pe, ge);
    const int64_t overlap = std::max<int64_t>(0, hi - lo + 1);
    if (overlap == 0)
        return 0.0;
    const double prec =
        static_cast<double>(overlap) / static_cast<double>(pe - ps + 1);
    const double rec =
        static_cast<double>(overlap) / static_cast<double>(ge - gs + 1);
    return 2.0 * prec * rec / (prec + rec);
}

double
perplexity(double total_nll, int64_t n_tokens)
{
    if (n_tokens <= 0)
        return 0.0;
    return std::exp(total_nll / static_cast<double>(n_tokens));
}

} // namespace qt8
