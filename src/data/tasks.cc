#include "data/tasks.h"

#include <algorithm>
#include <cassert>

#include "nn/loss.h"

namespace qt8 {
namespace {

/// Random content token in [kFirstContent, vocab).
int32_t
randomContent(Rng &rng, int64_t vocab)
{
    return static_cast<int32_t>(
        Vocab::kFirstContent +
        rng.randint(vocab - Vocab::kFirstContent));
}

} // namespace

SpanBatch
SpanTask::sample(Rng &rng, int64_t batch) const
{
    SpanBatch out;
    out.batch = batch;
    out.seq = seq_;
    out.ids.assign(static_cast<size_t>(batch * seq_), Vocab::kPad);
    out.pad.assign(static_cast<size_t>(batch * seq_), 1);
    out.start.resize(static_cast<size_t>(batch));
    out.end.resize(static_cast<size_t>(batch));

    for (int64_t b = 0; b < batch; ++b) {
        int32_t *ids = out.ids.data() + b * seq_;
        uint8_t *pad = out.pad.data() + b * seq_;

        const int32_t q = randomContent(rng, vocab_);
        const int len = 1 + static_cast<int>(rng.randint(3));
        // Context length varies so the padding mask is exercised.
        const int64_t ctx =
            seq_ / 2 - 4 + rng.randint(seq_ - 4 - (seq_ / 2 - 4) + 1);

        ids[0] = Vocab::kCls;
        ids[1] = q;
        ids[2] = Vocab::kFirstLen + (len - 1);
        ids[3] = Vocab::kSep;
        for (int64_t i = 0; i < 4 + ctx; ++i)
            pad[i] = 0;
        for (int64_t i = 4; i < 4 + ctx; ++i) {
            int32_t t = randomContent(rng, vocab_);
            while (t == q)
                t = randomContent(rng, vocab_);
            ids[i] = t;
        }
        // The answer is the run of `len` copies of the query token; the
        // start/end classifiers must locate it by content matching
        // against position 1 plus run-boundary detection.
        const int64_t pmax = 4 + ctx - len;
        const int64_t p = 4 + rng.randint(pmax - 4 + 1);
        for (int k = 0; k < len; ++k)
            ids[p + k] = q;
        out.start[static_cast<size_t>(b)] = static_cast<int32_t>(p);
        out.end[static_cast<size_t>(b)] = static_cast<int32_t>(p + len - 1);
    }
    return out;
}

const char *
PairTask::name(Kind kind)
{
    switch (kind) {
      case Kind::kMnli:
        return "mnli";
      case Kind::kQnli:
        return "qnli";
      case Kind::kMrpc:
        return "mrpc";
      case Kind::kSst2:
        return "sst2";
    }
    return "?";
}

ClsBatch
PairTask::sample(Rng &rng, int64_t batch) const
{
    ClsBatch out;
    out.batch = batch;
    out.seq = seq_;
    out.ids.assign(static_cast<size_t>(batch * seq_), Vocab::kPad);
    out.pad.assign(static_cast<size_t>(batch * seq_), 1);
    out.label.resize(static_cast<size_t>(batch));

    const int64_t la = segLen();
    const int64_t lb = segLen();

    for (int64_t b = 0; b < batch; ++b) {
        int32_t *ids = out.ids.data() + b * seq_;
        uint8_t *pad = out.pad.data() + b * seq_;
        std::vector<int32_t> a(static_cast<size_t>(la));
        std::vector<int32_t> bb(static_cast<size_t>(lb));
        int32_t label = 0;

        switch (kind_) {
          case Kind::kMnli: {
            label = static_cast<int32_t>(rng.randint(3));
            for (auto &t : a)
                t = randomContent(rng, vocab_);
            for (size_t i = 0; i < bb.size(); ++i) {
                const bool from_a =
                    label == 0 || (label == 2 && i % 2 == 0);
                if (from_a) {
                    bb[i] = a[static_cast<size_t>(
                        rng.randint(static_cast<int64_t>(a.size())))];
                } else {
                    int32_t t = randomContent(rng, vocab_);
                    while (std::find(a.begin(), a.end(), t) != a.end())
                        t = randomContent(rng, vocab_);
                    bb[i] = t;
                }
            }
            break;
          }
          case Kind::kQnli: {
            // Question-first layout ([CLS] q [SEP] passage [SEP]) so the
            // query sits where span-pretrained matching circuits look.
            label = static_cast<int32_t>(rng.randint(2));
            const int32_t q = randomContent(rng, vocab_);
            a.assign(a.size(), Vocab::kPad);
            a[0] = q;
            for (auto &t : bb) {
                t = randomContent(rng, vocab_);
                while (t == q)
                    t = randomContent(rng, vocab_);
            }
            if (label == 1) {
                // "Answerable": the query occurs several times in the
                // passage (repeated entity mentions).
                const int64_t occurrences =
                    2 + rng.randint(static_cast<int64_t>(bb.size()) / 3);
                for (int64_t k = 0; k < occurrences; ++k) {
                    bb[static_cast<size_t>(rng.randint(
                        static_cast<int64_t>(bb.size())))] = q;
                }
            }
            break;
          }
          case Kind::kMrpc: {
            for (auto &t : a)
                t = randomContent(rng, vocab_);
            bb = a;
            // Shuffle B (paraphrase = permutation).
            for (size_t i = bb.size(); i > 1; --i) {
                std::swap(bb[i - 1], bb[static_cast<size_t>(
                                         rng.randint(
                                             static_cast<int64_t>(i)))]);
            }
            label = static_cast<int32_t>(rng.randint(2));
            if (label == 0) {
                // Not a paraphrase: replace ~40% of B's tokens.
                for (auto &t : bb) {
                    if (rng.uniform() < 0.4) {
                        int32_t r = randomContent(rng, vocab_);
                        while (std::find(a.begin(), a.end(), r) != a.end())
                            r = randomContent(rng, vocab_);
                        t = r;
                    }
                }
            }
            break;
          }
          case Kind::kSst2: {
            // Single segment: polarity = majority token pool.
            const int64_t mid =
                Vocab::kFirstContent +
                (vocab_ - Vocab::kFirstContent) / 2;
            label = static_cast<int32_t>(rng.randint(2));
            // Pick counts with a clear majority.
            const int64_t total = la + lb;
            const int64_t majority =
                total / 2 + 1 + rng.randint(total / 2 - 1);
            std::vector<int32_t> seg(static_cast<size_t>(total));
            for (int64_t i = 0; i < total; ++i) {
                const bool in_major = i < majority;
                const bool positive = (label == 1) == in_major;
                if (positive) {
                    seg[static_cast<size_t>(i)] = static_cast<int32_t>(
                        Vocab::kFirstContent +
                        rng.randint(mid - Vocab::kFirstContent));
                } else {
                    seg[static_cast<size_t>(i)] = static_cast<int32_t>(
                        mid + rng.randint(vocab_ - mid));
                }
            }
            // Shuffle so position carries no signal.
            for (size_t i = seg.size(); i > 1; --i) {
                std::swap(seg[i - 1], seg[static_cast<size_t>(
                                          rng.randint(
                                              static_cast<int64_t>(i)))]);
            }
            std::copy(seg.begin(),
                      seg.begin() + static_cast<int64_t>(a.size()),
                      a.begin());
            std::copy(seg.begin() + static_cast<int64_t>(a.size()),
                      seg.end(), bb.begin());
            break;
          }
        }

        ids[0] = Vocab::kCls;
        int64_t p = 1;
        for (int32_t t : a)
            ids[p++] = t;
        ids[p++] = Vocab::kSep;
        for (int32_t t : bb)
            ids[p++] = t;
        ids[p++] = Vocab::kSep;
        for (int64_t i = 0; i < p; ++i)
            pad[i] = 0;
        out.label[static_cast<size_t>(b)] = label;
    }
    return out;
}

Seq2SeqBatch
Seq2SeqTask::sample(Rng &rng, int64_t batch) const
{
    Seq2SeqBatch out;
    out.batch = batch;
    out.seq_src = seq_src_;
    out.seq_tgt = seq_tgt_;
    out.src.assign(static_cast<size_t>(batch * seq_src_), Vocab::kPad);
    out.src_pad.assign(static_cast<size_t>(batch * seq_src_), 1);
    out.tgt_in.assign(static_cast<size_t>(batch * seq_tgt_), Vocab::kPad);
    out.tgt_out.assign(static_cast<size_t>(batch * seq_tgt_),
                       kIgnoreIndex);
    out.refs.resize(static_cast<size_t>(batch));

    const int32_t noise = Vocab::kFirstLen; // reserved noise marker

    for (int64_t b = 0; b < batch; ++b) {
        const int64_t lt =
            seq_tgt_ / 2 + rng.randint(seq_tgt_ - 2 - seq_tgt_ / 2);
        std::vector<int32_t> y(static_cast<size_t>(lt));
        int32_t prev = -1;
        for (auto &t : y) {
            // Consecutive duplicates would be ambiguous to deduplicate.
            int32_t v = randomContent(rng, vocab_);
            while (v == prev)
                v = randomContent(rng, vocab_);
            t = v;
            prev = v;
        }
        out.refs[static_cast<size_t>(b)] = y;

        // Source: each token repeated 1..3 times, occasional noise.
        std::vector<int32_t> src;
        for (int32_t t : y) {
            const int64_t reps = 1 + rng.randint(3);
            for (int64_t r = 0; r < reps; ++r)
                src.push_back(t);
            if (rng.uniform() < 0.15)
                src.push_back(noise);
        }
        if (static_cast<int64_t>(src.size()) > seq_src_)
            src.resize(static_cast<size_t>(seq_src_));
        for (size_t i = 0; i < src.size(); ++i) {
            out.src[static_cast<size_t>(b * seq_src_) + i] = src[i];
            out.src_pad[static_cast<size_t>(b * seq_src_) + i] = 0;
        }

        // Decoder teacher forcing: in = BOS + y, out = y + EOS.
        out.tgt_in[static_cast<size_t>(b * seq_tgt_)] = Vocab::kBos;
        for (int64_t i = 0; i < lt && i + 1 < seq_tgt_; ++i) {
            out.tgt_in[static_cast<size_t>(b * seq_tgt_ + i + 1)] =
                y[static_cast<size_t>(i)];
        }
        for (int64_t i = 0; i < lt; ++i) {
            out.tgt_out[static_cast<size_t>(b * seq_tgt_ + i)] =
                y[static_cast<size_t>(i)];
        }
        if (lt < seq_tgt_)
            out.tgt_out[static_cast<size_t>(b * seq_tgt_ + lt)] =
                Vocab::kEos;
    }
    return out;
}

LmTask::LmTask(int64_t vocab, uint64_t structure_seed) : vocab_(vocab)
{
    Rng rng(structure_seed);
    transitions_.resize(static_cast<size_t>(vocab));
    for (int64_t t = 0; t < vocab; ++t) {
        auto &succ = transitions_[static_cast<size_t>(t)];
        for (int i = 0; i < 4; ++i)
            succ.push_back(randomContent(rng, vocab_));
    }
    for (int p = 0; p < 8; ++p) {
        std::vector<int32_t> phrase(4 + static_cast<size_t>(rng.randint(3)));
        for (auto &t : phrase)
            t = randomContent(rng, vocab_);
        phrases_.push_back(std::move(phrase));
    }
}

int32_t
LmTask::next(Rng &rng, int32_t prev) const
{
    if (rng.uniform() < 0.85) {
        const auto &succ = transitions_[static_cast<size_t>(prev)];
        // Skewed choice over the 4 successors: 0.5 / 0.25 / 0.15 / 0.1.
        const double u = rng.uniform();
        size_t idx = 3;
        if (u < 0.5)
            idx = 0;
        else if (u < 0.75)
            idx = 1;
        else if (u < 0.9)
            idx = 2;
        return succ[idx];
    }
    return randomContent(rng, vocab_);
}

std::vector<int32_t>
LmTask::stream(Rng &rng, int64_t n) const
{
    std::vector<int32_t> out;
    out.reserve(static_cast<size_t>(n));
    int32_t prev = randomContent(rng, vocab_);
    out.push_back(prev);
    while (static_cast<int64_t>(out.size()) < n) {
        if (rng.uniform() < 0.05) {
            const auto &phrase = phrases_[static_cast<size_t>(
                rng.randint(static_cast<int64_t>(phrases_.size())))];
            for (int32_t t : phrase) {
                out.push_back(t);
                prev = t;
            }
        } else {
            prev = next(rng, prev);
            out.push_back(prev);
        }
    }
    out.resize(static_cast<size_t>(n));
    return out;
}

LmBatch
LmTask::sample(Rng &rng, int64_t batch, int64_t seq) const
{
    LmBatch out;
    out.batch = batch;
    out.seq = seq;
    out.ids.resize(static_cast<size_t>(batch * seq));
    out.targets.resize(static_cast<size_t>(batch * seq));
    for (int64_t b = 0; b < batch; ++b) {
        const auto s = stream(rng, seq + 1);
        for (int64_t i = 0; i < seq; ++i) {
            out.ids[static_cast<size_t>(b * seq + i)] =
                s[static_cast<size_t>(i)];
            out.targets[static_cast<size_t>(b * seq + i)] =
                s[static_cast<size_t>(i + 1)];
        }
    }
    return out;
}

} // namespace qt8
