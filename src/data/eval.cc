#include "data/eval.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "data/metrics.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace qt8 {
namespace {

constexpr float kNegInf = -1e9f;

/// Split [B*S, 2] span logits into per-batch start/end rows with padded
/// positions masked out.
void
splitSpanLogits(const Tensor &logits, const SpanBatch &batch,
                Tensor &start_logits, Tensor &end_logits)
{
    const int64_t b = batch.batch;
    const int64_t s = batch.seq;
    start_logits = Tensor({b, s});
    end_logits = Tensor({b, s});
    for (int64_t i = 0; i < b; ++i) {
        for (int64_t j = 0; j < s; ++j) {
            const bool pad =
                batch.pad[static_cast<size_t>(i * s + j)] != 0;
            start_logits.at(i, j) =
                pad ? kNegInf : logits.at(i * s + j, 0);
            end_logits.at(i, j) =
                pad ? kNegInf : logits.at(i * s + j, 1);
        }
    }
}

} // namespace

SpanLossResult
spanLoss(const Tensor &logits, const SpanBatch &batch)
{
    Tensor start_logits, end_logits;
    splitSpanLogits(logits, batch, start_logits, end_logits);

    const CEResult ls = softmaxCrossEntropy(start_logits, batch.start);
    const CEResult le = softmaxCrossEntropy(end_logits, batch.end);

    SpanLossResult res;
    res.loss = 0.5 * (ls.loss + le.loss);
    res.dlogits = Tensor({batch.batch * batch.seq, 2});
    for (int64_t i = 0; i < batch.batch; ++i) {
        for (int64_t j = 0; j < batch.seq; ++j) {
            res.dlogits.at(i * batch.seq + j, 0) =
                0.5f * ls.dlogits.at(i, j);
            res.dlogits.at(i * batch.seq + j, 1) =
                0.5f * le.dlogits.at(i, j);
        }
    }
    return res;
}

double
spanF1Percent(const Tensor &logits, const SpanBatch &batch)
{
    Tensor start_logits, end_logits;
    splitSpanLogits(logits, batch, start_logits, end_logits);

    double total = 0.0;
    for (int64_t b = 0; b < batch.batch; ++b) {
        const int64_t ps = rowArgmax(start_logits, b);
        // End constrained to a short window after the start (answers
        // are at most 3 tokens in the synthetic task).
        int64_t pe = ps;
        float best = kNegInf;
        for (int64_t j = ps; j < std::min(batch.seq, ps + 4); ++j) {
            if (end_logits.at(b, j) > best) {
                best = end_logits.at(b, j);
                pe = j;
            }
        }
        total += spanOverlapF1(ps, pe,
                               batch.start[static_cast<size_t>(b)],
                               batch.end[static_cast<size_t>(b)]);
    }
    return 100.0 * total / static_cast<double>(batch.batch);
}

double
evalSpanF1(EncoderSpanQA &model, QuantSession &qs, const SpanTask &task,
           uint64_t seed, int n_batches, int64_t batch)
{
    Rng rng(seed);
    double total = 0.0;
    for (int i = 0; i < n_batches; ++i) {
        const SpanBatch b = task.sample(rng, batch);
        const Tensor logits =
            model.forward(qs, b.ids, b.batch, b.seq, b.pad.data());
        total += spanF1Percent(logits, b);
    }
    return total / n_batches;
}

double
evalClsAccuracy(EncoderClassifier &model, QuantSession &qs,
                const PairTask &task, uint64_t seed, int n_batches,
                int64_t batch)
{
    Rng rng(seed);
    int64_t correct = 0;
    int64_t total = 0;
    for (int i = 0; i < n_batches; ++i) {
        const ClsBatch b = task.sample(rng, batch);
        const Tensor logits =
            model.forward(qs, b.ids, b.batch, b.seq, b.pad.data());
        for (int64_t k = 0; k < b.batch; ++k) {
            correct += rowArgmax(logits, k) ==
                       b.label[static_cast<size_t>(k)];
            ++total;
        }
    }
    return 100.0 * static_cast<double>(correct) /
           static_cast<double>(total);
}

double
evalWer(Seq2Seq &model, QuantSession &qs, const Seq2SeqTask &task,
        uint64_t seed, int n_batches, int64_t batch)
{
    Rng rng(seed);
    std::vector<std::vector<int32_t>> hyps, refs;
    for (int i = 0; i < n_batches; ++i) {
        const Seq2SeqBatch b = task.sample(rng, batch);
        auto decoded =
            model.greedyDecode(qs, b.src, b.batch, b.seq_src,
                               b.src_pad.data(), b.seq_tgt, Vocab::kBos,
                               Vocab::kEos);
        for (int64_t k = 0; k < b.batch; ++k) {
            hyps.push_back(std::move(decoded[static_cast<size_t>(k)]));
            refs.push_back(b.refs[static_cast<size_t>(k)]);
        }
    }
    return 100.0 * wordErrorRate(hyps, refs);
}

double
evalPerplexity(CausalLM &model, QuantSession &qs, const LmTask &task,
               uint64_t seed, int64_t n_tokens, int64_t seq,
               int64_t stride)
{
    Rng rng(seed);
    const std::vector<int32_t> stream = task.stream(rng, n_tokens);

    double total_nll = 0.0;
    int64_t counted = 0;
    for (int64_t w = 0; w + seq + 1 <= n_tokens; w += stride) {
        std::vector<int32_t> ids(stream.begin() + w,
                                 stream.begin() + w + seq);
        std::vector<int32_t> targets(seq);
        for (int64_t i = 0; i < seq; ++i) {
            // Only the final `stride` positions are scored for
            // non-initial windows (sliding-window evaluation).
            const bool score = (w == 0) || (i >= seq - stride);
            targets[static_cast<size_t>(i)] =
                score ? stream[static_cast<size_t>(w + i + 1)]
                      : kIgnoreIndex;
        }
        const Tensor logits = model.forward(qs, ids, 1, seq);
        const CEResult ce = softmaxCrossEntropy(logits, targets);
        total_nll += ce.loss * static_cast<double>(ce.count);
        counted += ce.count;
    }
    return perplexity(total_nll, counted);
}

namespace {

/// Shared optimizer/step plumbing for the four training drivers.
class StepRunner
{
  public:
    StepRunner(ParamList params, const TrainOptions &opts)
        : params_(std::move(params)), opts_(opts),
          scaler_(opts.loss_scale, opts.loss_scale != 1.0)
    {
        if (opts.opt == TrainOptions::Opt::kAdamW) {
            adamw_ = std::make_unique<AdamW>(opts.lr, 0.9, 0.999, 1e-8,
                                             opts.weight_decay);
        } else {
            sgd_ = std::make_unique<Sgd>(opts.lr, opts.momentum);
        }
    }

    double lossScale() const { return scaler_.scale(); }

    /// Returns true if the step was applied.
    bool
    step()
    {
        bool ok = scaler_.unscaleAndCheck(params_);
        if (ok) {
            if (opts_.clip_norm > 0)
                clipGradNorm(params_, opts_.clip_norm);
            if (adamw_)
                adamw_->step(params_);
            else
                sgd_->step(params_);
        }
        zeroGrads(params_);
        return ok;
    }

    const ParamList &params() const { return params_; }

  private:
    ParamList params_;
    TrainOptions opts_;
    LossScaler scaler_;
    std::unique_ptr<AdamW> adamw_;
    std::unique_ptr<Sgd> sgd_;
};

TrainResult
finishTraining(const std::vector<double> &losses, int skipped)
{
    TrainResult res;
    res.skipped_steps = skipped;
    const size_t tail =
        std::max<size_t>(1, losses.size() / 10);
    double acc = 0.0;
    for (size_t i = losses.size() - tail; i < losses.size(); ++i)
        acc += losses[i];
    res.final_loss = acc / static_cast<double>(tail);
    res.diverged = !std::isfinite(res.final_loss) ||
                   skipped > static_cast<int>(losses.size()) / 3;
    return res;
}

} // namespace

TrainResult
trainSpan(EncoderSpanQA &model, QuantSession &qs, const SpanTask &task,
          const TrainOptions &opts)
{
    ParamList params;
    model.collectParams(params);
    StepRunner runner(params, opts);
    Rng rng(opts.data_seed);
    std::vector<double> losses;
    int skipped = 0;

    for (int step = 0; step < opts.steps; ++step) {
        const SpanBatch b = task.sample(rng, opts.batch);
        const Tensor logits =
            model.forward(qs, b.ids, b.batch, b.seq, b.pad.data());
        SpanLossResult l = spanLoss(logits, b);
        losses.push_back(l.loss);
        scaleInPlace(l.dlogits, static_cast<float>(runner.lossScale()));
        model.backward(qs, l.dlogits);
        if (!runner.step())
            ++skipped;
        if (opts.log_every > 0 && step % opts.log_every == 0)
            std::printf("  step %4d loss %.4f\n", step, l.loss);
    }
    return finishTraining(losses, skipped);
}

TrainResult
trainCls(EncoderClassifier &model, QuantSession &qs, const PairTask &task,
         const TrainOptions &opts)
{
    ParamList params;
    model.collectParams(params);
    StepRunner runner(params, opts);
    Rng rng(opts.data_seed);
    std::vector<double> losses;
    int skipped = 0;

    for (int step = 0; step < opts.steps; ++step) {
        const ClsBatch b = task.sample(rng, opts.batch);
        const Tensor logits =
            model.forward(qs, b.ids, b.batch, b.seq, b.pad.data());
        CEResult ce = softmaxCrossEntropy(logits, b.label);
        losses.push_back(ce.loss);
        scaleInPlace(ce.dlogits, static_cast<float>(runner.lossScale()));
        model.backward(qs, ce.dlogits);
        if (!runner.step())
            ++skipped;
        if (opts.log_every > 0 && step % opts.log_every == 0)
            std::printf("  step %4d loss %.4f\n", step, ce.loss);
    }
    return finishTraining(losses, skipped);
}

TrainResult
trainSeq2Seq(Seq2Seq &model, QuantSession &qs, const Seq2SeqTask &task,
             const TrainOptions &opts)
{
    ParamList params;
    model.collectParams(params);
    StepRunner runner(params, opts);
    Rng rng(opts.data_seed);
    std::vector<double> losses;
    int skipped = 0;

    for (int step = 0; step < opts.steps; ++step) {
        const Seq2SeqBatch b = task.sample(rng, opts.batch);
        const Tensor logits =
            model.forward(qs, b.src, b.batch, b.seq_src,
                          b.src_pad.data(), b.tgt_in, b.seq_tgt);
        CEResult ce = softmaxCrossEntropy(logits, b.tgt_out);
        losses.push_back(ce.loss);
        scaleInPlace(ce.dlogits, static_cast<float>(runner.lossScale()));
        model.backward(qs, ce.dlogits);
        if (!runner.step())
            ++skipped;
        if (opts.log_every > 0 && step % opts.log_every == 0)
            std::printf("  step %4d loss %.4f\n", step, ce.loss);
    }
    return finishTraining(losses, skipped);
}

TrainResult
trainLm(CausalLM &model, QuantSession &qs, const LmTask &task, int64_t seq,
        const TrainOptions &opts)
{
    ParamList params;
    model.collectParams(params);
    StepRunner runner(params, opts);
    Rng rng(opts.data_seed);
    std::vector<double> losses;
    int skipped = 0;

    for (int step = 0; step < opts.steps; ++step) {
        const LmBatch b = task.sample(rng, opts.batch, seq);
        const Tensor logits = model.forward(qs, b.ids, b.batch, b.seq);
        CEResult ce = softmaxCrossEntropy(logits, b.targets);
        losses.push_back(ce.loss);
        scaleInPlace(ce.dlogits, static_cast<float>(runner.lossScale()));
        model.backward(qs, ce.dlogits);
        if (!runner.step())
            ++skipped;
        if (opts.log_every > 0 && step % opts.log_every == 0)
            std::printf("  step %4d loss %.4f\n", step, ce.loss);
    }
    return finishTraining(losses, skipped);
}

} // namespace qt8
