/**
 * @file
 * Evaluation metrics matching the paper's tasks: SQuAD-style span F1,
 * classification accuracy, word error rate (Levenshtein), perplexity.
 */
#ifndef QT8_DATA_METRICS_H
#define QT8_DATA_METRICS_H

#include <cstdint>
#include <vector>

namespace qt8 {

/// Levenshtein edit distance between two token sequences.
int64_t editDistance(const std::vector<int32_t> &a,
                     const std::vector<int32_t> &b);

/// Word error rate: edit distance / reference length (can exceed 1).
double wordErrorRate(const std::vector<std::vector<int32_t>> &hyps,
                     const std::vector<std::vector<int32_t>> &refs);

/// SQuAD-style token-overlap F1 between two position spans
/// [ps, pe] and [gs, ge] (inclusive), in [0, 1].
double spanOverlapF1(int64_t ps, int64_t pe, int64_t gs, int64_t ge);

/// Perplexity from a total negative log likelihood over n tokens.
double perplexity(double total_nll, int64_t n_tokens);

} // namespace qt8

#endif // QT8_DATA_METRICS_H
