/**
 * @file
 * Deterministic synthetic task generators standing in for the paper's
 * datasets (see DESIGN.md section 2 for the substitution rationale):
 *
 *  - SpanTask        ~ SQuAD v1.1 span extraction (F1 metric). A query
 *    token appears once in the context; the answer span starts after it
 *    with a length encoded by a length token. Requires content-based
 *    attention, so it is sensitive to attention-score quantization.
 *  - PairTask        ~ GLUE sentence-pair tasks (accuracy): MNLI-like
 *    (3-way subset/disjoint/overlap), QNLI-like (does the query token
 *    occur), MRPC-like (is B a permutation of A), SST2-like (which
 *    token polarity class dominates).
 *  - Seq2SeqTask     ~ LibriSpeech ASR (WER): the source is the target
 *    with tokens repeated a variable number of times plus inserted
 *    noise; the model must emit the deduplicated clean sequence.
 *  - LmTask          ~ WikiText-103 language modelling (perplexity): a
 *    seeded sparse bigram chain with Zipfian marginals and recurring
 *    multi-token phrases.
 */
#ifndef QT8_DATA_TASKS_H
#define QT8_DATA_TASKS_H

#include <cstdint>
#include <vector>

#include "tensor/random.h"

namespace qt8 {

/// Shared special token ids (all tasks).
struct Vocab
{
    static constexpr int32_t kPad = 0;
    static constexpr int32_t kCls = 1;
    static constexpr int32_t kSep = 2;
    static constexpr int32_t kBos = 3;
    static constexpr int32_t kEos = 4;
    static constexpr int32_t kFirstLen = 5; ///< Length tokens 5..7.
    static constexpr int32_t kFirstContent = 8;
};

/// A batch for the span-extraction task.
struct SpanBatch
{
    std::vector<int32_t> ids;   ///< B*S token ids.
    std::vector<uint8_t> pad;   ///< B*S padding mask (1 = pad).
    std::vector<int32_t> start; ///< B gold start positions.
    std::vector<int32_t> end;   ///< B gold end positions.
    int64_t batch = 0;
    int64_t seq = 0;
};

class SpanTask
{
  public:
    SpanTask(int64_t vocab, int64_t seq) : vocab_(vocab), seq_(seq) {}

    SpanBatch sample(Rng &rng, int64_t batch) const;

    int64_t vocabSize() const { return vocab_; }
    int64_t seqLen() const { return seq_; }

  private:
    int64_t vocab_;
    int64_t seq_;
};

/// A batch for sentence-pair classification.
struct ClsBatch
{
    std::vector<int32_t> ids;
    std::vector<uint8_t> pad;
    std::vector<int32_t> label; ///< B labels.
    int64_t batch = 0;
    int64_t seq = 0;
};

class PairTask
{
  public:
    enum class Kind { kMnli, kQnli, kMrpc, kSst2 };

    PairTask(Kind kind, int64_t vocab, int64_t seq)
        : kind_(kind), vocab_(vocab), seq_(seq)
    {}

    ClsBatch sample(Rng &rng, int64_t batch) const;

    int numClasses() const { return kind_ == Kind::kMnli ? 3 : 2; }
    Kind kind() const { return kind_; }
    static const char *name(Kind kind);

  private:
    int64_t segLen() const { return (seq_ - 3) / 2; }

    Kind kind_;
    int64_t vocab_;
    int64_t seq_;
};

/// A batch for the seq2seq transduction task.
struct Seq2SeqBatch
{
    std::vector<int32_t> src;     ///< B*S source ids.
    std::vector<uint8_t> src_pad; ///< B*S padding mask.
    std::vector<int32_t> tgt_in;  ///< B*T decoder inputs (BOS-prefixed).
    std::vector<int32_t> tgt_out; ///< B*T shifted targets (EOS-suffixed,
                                  ///< kIgnoreIndex-padded).
    std::vector<std::vector<int32_t>> refs; ///< Clean targets, per item.
    int64_t batch = 0;
    int64_t seq_src = 0;
    int64_t seq_tgt = 0;
};

class Seq2SeqTask
{
  public:
    Seq2SeqTask(int64_t vocab, int64_t seq_src, int64_t seq_tgt)
        : vocab_(vocab), seq_src_(seq_src), seq_tgt_(seq_tgt)
    {}

    Seq2SeqBatch sample(Rng &rng, int64_t batch) const;

    int64_t seqSrc() const { return seq_src_; }
    int64_t seqTgt() const { return seq_tgt_; }

  private:
    int64_t vocab_;
    int64_t seq_src_;
    int64_t seq_tgt_;
};

/// A batch of contiguous LM token windows with shifted targets.
struct LmBatch
{
    std::vector<int32_t> ids;     ///< B*S inputs.
    std::vector<int32_t> targets; ///< B*S next-token targets.
    int64_t batch = 0;
    int64_t seq = 0;
};

class LmTask
{
  public:
    /// The transition structure is fixed by @p structure_seed so train
    /// and held-out streams share the same "language".
    LmTask(int64_t vocab, uint64_t structure_seed);

    /// Sample B windows of length S from a fresh stream.
    LmBatch sample(Rng &rng, int64_t batch, int64_t seq) const;

    /// Generate one contiguous evaluation stream of n tokens.
    std::vector<int32_t> stream(Rng &rng, int64_t n) const;

    int64_t vocabSize() const { return vocab_; }

  private:
    int32_t next(Rng &rng, int32_t prev) const;

    int64_t vocab_;
    /// transitions_[prev] = candidate successor tokens (sparse bigram).
    std::vector<std::vector<int32_t>> transitions_;
    /// Recurring phrases injected with small probability.
    std::vector<std::vector<int32_t>> phrases_;
};

} // namespace qt8

#endif // QT8_DATA_TASKS_H
