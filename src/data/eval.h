/**
 * @file
 * Training and evaluation drivers shared by the tests, examples and
 * benchmark harnesses: span-extraction F1 (SQuAD-like), pair
 * classification accuracy (GLUE-like), seq2seq WER (LibriSpeech-like)
 * and LM perplexity (WikiText-like, sliding-window evaluation).
 */
#ifndef QT8_DATA_EVAL_H
#define QT8_DATA_EVAL_H

#include "data/tasks.h"
#include "nn/model.h"
#include "nn/optim.h"

namespace qt8 {

/// Span loss: mean of start and end cross-entropies over positions.
struct SpanLossResult
{
    double loss = 0.0;
    Tensor dlogits; ///< [B*S, 2]
};

SpanLossResult spanLoss(const Tensor &logits, const SpanBatch &batch);

/// Mean SQuAD-style token-overlap F1 (in percent) of the argmax spans.
double spanF1Percent(const Tensor &logits, const SpanBatch &batch);

/// Evaluate span F1 over n_batches fresh batches (deterministic seed).
double evalSpanF1(EncoderSpanQA &model, QuantSession &qs,
                  const SpanTask &task, uint64_t seed, int n_batches,
                  int64_t batch);

/// Evaluate classification accuracy (percent).
double evalClsAccuracy(EncoderClassifier &model, QuantSession &qs,
                       const PairTask &task, uint64_t seed, int n_batches,
                       int64_t batch);

/// Evaluate WER (percent) with greedy decoding.
double evalWer(Seq2Seq &model, QuantSession &qs, const Seq2SeqTask &task,
               uint64_t seed, int n_batches, int64_t batch);

/// Sliding-window LM perplexity over a held-out stream of n_tokens,
/// window seq, given stride (the paper uses seq 1024 / stride 512).
double evalPerplexity(CausalLM &model, QuantSession &qs,
                      const LmTask &task, uint64_t seed, int64_t n_tokens,
                      int64_t seq, int64_t stride);

/// Options for the training drivers.
struct TrainOptions
{
    enum class Opt { kAdamW, kSgd };

    int steps = 300;
    int64_t batch = 16;
    double lr = 1e-3;
    Opt opt = Opt::kAdamW;
    double momentum = 0.9;
    double weight_decay = 0.01;
    double clip_norm = 1.0;
    double loss_scale = 1.0;   ///< 1.0 = no loss scaling.
    uint64_t data_seed = 1234;
    int log_every = 0;         ///< 0 = silent.
};

struct TrainResult
{
    double final_loss = 0.0;   ///< Mean loss over the last 10% of steps.
    int skipped_steps = 0;     ///< Steps skipped due to non-finite grads.
    bool diverged = false;
};

TrainResult trainSpan(EncoderSpanQA &model, QuantSession &qs,
                      const SpanTask &task, const TrainOptions &opts);
TrainResult trainCls(EncoderClassifier &model, QuantSession &qs,
                     const PairTask &task, const TrainOptions &opts);
TrainResult trainSeq2Seq(Seq2Seq &model, QuantSession &qs,
                         const Seq2SeqTask &task, const TrainOptions &opts);
TrainResult trainLm(CausalLM &model, QuantSession &qs, const LmTask &task,
                    int64_t seq, const TrainOptions &opts);

} // namespace qt8

#endif // QT8_DATA_EVAL_H
