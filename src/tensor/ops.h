/**
 * @file
 * Dense kernels used by the model layer. GEMM accumulates in double,
 * modelling the accelerator's fused high-precision accumulation
 * (section 3.2): inputs may be 8-bit grid values, partial sums are kept
 * wide, and a single rounding happens when the consumer quantizes.
 */
#ifndef QT8_TENSOR_OPS_H
#define QT8_TENSOR_OPS_H

#include "tensor/tensor.h"

namespace qt8 {

/**
 * C = alpha * op(A) . op(B) + beta * C
 * A is m x k (after optional transpose), B is k x n, C is m x n.
 * Accumulation is double precision.
 *
 * Cache-blocked over an (m-tile, n-tile) grid: strided operands are
 * packed into contiguous per-tile panels, and the flattened tile space
 * is what parallelizes (so m=1 decode GEMVs still spread over all
 * cores). The k loop is never split, so each output element sees the
 * same ascending-k accumulation order as the naive loop and the result
 * is bit-identical to gemmReference.
 */
void gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
          Tensor &c, float alpha = 1.0f, float beta = 0.0f);

/**
 * The unblocked triple-loop GEMM (the original kernel), kept as the
 * reference for equivalence tests and the blocked-vs-naive benchmarks.
 * Bit-identical to gemm().
 */
void gemmReference(const Tensor &a, bool trans_a, const Tensor &b,
                   bool trans_b, Tensor &c, float alpha = 1.0f,
                   float beta = 0.0f);

/// Convenience: returns op(A) . op(B).
Tensor matmul(const Tensor &a, const Tensor &b, bool trans_a = false,
              bool trans_b = false);

/// y += x (same shape).
void addInPlace(Tensor &y, const Tensor &x);

/// y += alpha * x.
void axpy(Tensor &y, const Tensor &x, float alpha);

/// Elementwise sum.
Tensor add(const Tensor &a, const Tensor &b);

/// Multiply every element by s.
void scaleInPlace(Tensor &t, float s);

/// Add a row vector (bias of length n) to every row of a (m x n) tensor.
void addRowBias(Tensor &t, const Tensor &bias);

/// Sum a (m x n) tensor over rows into a length-n vector (for bias
/// gradients). Accumulates in double.
Tensor sumRows(const Tensor &t);

/// acc[j] += sum over rows of t[:, j] (acc is length-n). Same rounding
/// as sumRows followed by addInPlace, without the temporary.
void sumRowsAdd(Tensor &acc, const Tensor &t);

/// Numerically stable softmax over the last dimension, in place.
void softmaxRowsInPlace(Tensor &t);

/// tanh-based GeLU (as used by BERT-family models).
float geluScalar(float x);
/// Derivative of the tanh-based GeLU.
float geluGradScalar(float x);

void geluInPlace(Tensor &t);

/// Max |element| over the finite elements (NaN/inf are skipped, like
/// the per-tensor scaling scans).
double amax(const Tensor &t);

/// Mean of elements.
double mean(const Tensor &t);

/// Sum of squares.
double sumSquares(const Tensor &t);

/// Index of the max element in row r of a 2-D tensor. NaN entries are
/// skipped (first max among non-NaN values; 0 if the row is all NaN).
int64_t rowArgmax(const Tensor &t, int64_t row);

/// True if all elements are finite.
bool allFinite(const Tensor &t);

} // namespace qt8

#endif // QT8_TENSOR_OPS_H
