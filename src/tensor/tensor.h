/**
 * @file
 * Minimal dense tensor: contiguous row-major float32 storage with a
 * dynamic shape. Deliberately simple — the library's quantization
 * semantics live in the numerics/quant layers, and models use explicit
 * kernels from ops.h rather than an expression system.
 */
#ifndef QT8_TENSOR_TENSOR_H
#define QT8_TENSOR_TENSOR_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <vector>

namespace qt8 {

/// Dense row-major float tensor (rank 0..4 used in practice).
class Tensor
{
  public:
    Tensor() = default;

    /// Zero-initialized tensor of the given shape.
    explicit Tensor(std::vector<int64_t> shape)
        : shape_(std::move(shape)), data_(computeNumel(shape_), 0.0f)
    {}

    Tensor(std::initializer_list<int64_t> shape)
        : Tensor(std::vector<int64_t>(shape))
    {}

    static Tensor zeros(std::vector<int64_t> shape)
    {
        return Tensor(std::move(shape));
    }

    static Tensor full(std::vector<int64_t> shape, float value);

    const std::vector<int64_t> &shape() const { return shape_; }
    int64_t dim(int i) const { return shape_[static_cast<size_t>(i)]; }
    int rank() const { return static_cast<int>(shape_.size()); }
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float &at(int64_t i) { return data_[static_cast<size_t>(i)]; }
    float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

    /// 2-D accessor (row-major).
    float &at(int64_t i, int64_t j)
    {
        assert(rank() == 2);
        return data_[static_cast<size_t>(i * shape_[1] + j)];
    }
    float at(int64_t i, int64_t j) const
    {
        assert(rank() == 2);
        return data_[static_cast<size_t>(i * shape_[1] + j)];
    }

    /// 3-D accessor.
    float &at(int64_t i, int64_t j, int64_t k)
    {
        assert(rank() == 3);
        return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] +
                                         k)];
    }
    float at(int64_t i, int64_t j, int64_t k) const
    {
        assert(rank() == 3);
        return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] +
                                         k)];
    }

    /// Reinterpret with a new shape of equal element count.
    Tensor reshaped(std::vector<int64_t> new_shape) const;

    /// Set all elements to zero.
    void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

    bool sameShape(const Tensor &other) const
    {
        return shape_ == other.shape_;
    }

    static int64_t computeNumel(const std::vector<int64_t> &shape)
    {
        int64_t n = 1;
        for (int64_t d : shape)
            n *= d;
        return n;
    }

  private:
    std::vector<int64_t> shape_;
    std::vector<float> data_;
};

} // namespace qt8

#endif // QT8_TENSOR_TENSOR_H
