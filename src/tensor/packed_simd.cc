#include "tensor/packed_simd.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace qt8::detail {

#if defined(__AVX2__) && defined(__FMA__)

bool
packedSimdAvailable()
{
    // This TU is compiled with -mavx2 -mfma whether or not the running
    // CPU has them; gate at runtime so the rest of the binary stays
    // safe on older x86 cores.
    static const bool ok = __builtin_cpu_supports("avx2") &&
                           __builtin_cpu_supports("fma");
    return ok;
}

const char *
packedSimdName()
{
    return packedSimdAvailable() ? "avx2" : "portable";
}

void
dotChunk8Simd(const float *a, const double *w, int64_t kc, double *acc)
{
    __m256d acc0 = _mm256_loadu_pd(acc);
    __m256d acc1 = _mm256_loadu_pd(acc + 4);
    for (int64_t t = 0; t < kc; ++t) {
        // One broadcast activation against 8 decoded weight columns.
        // a[t] and w[..] both hold float-valued doubles, so the fmadd
        // product is exact and the single add per lane lands on the
        // same bits as the scalar mul-then-add.
        const __m256d av = _mm256_set1_pd(static_cast<double>(a[t]));
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(w + t * 8), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(w + t * 8 + 4), acc1);
    }
    _mm256_storeu_pd(acc, acc0);
    _mm256_storeu_pd(acc + 4, acc1);
}

#elif defined(__aarch64__) && defined(__ARM_NEON)

bool
packedSimdAvailable()
{
    return true; // NEON (incl. float64x2) is baseline on aarch64.
}

const char *
packedSimdName()
{
    return "neon";
}

void
dotChunk8Simd(const float *a, const double *w, int64_t kc, double *acc)
{
    float64x2_t acc0 = vld1q_f64(acc);
    float64x2_t acc1 = vld1q_f64(acc + 2);
    float64x2_t acc2 = vld1q_f64(acc + 4);
    float64x2_t acc3 = vld1q_f64(acc + 6);
    for (int64_t t = 0; t < kc; ++t) {
        const float64x2_t av = vdupq_n_f64(static_cast<double>(a[t]));
        acc0 = vfmaq_f64(acc0, av, vld1q_f64(w + t * 8));
        acc1 = vfmaq_f64(acc1, av, vld1q_f64(w + t * 8 + 2));
        acc2 = vfmaq_f64(acc2, av, vld1q_f64(w + t * 8 + 4));
        acc3 = vfmaq_f64(acc3, av, vld1q_f64(w + t * 8 + 6));
    }
    vst1q_f64(acc, acc0);
    vst1q_f64(acc + 2, acc1);
    vst1q_f64(acc + 4, acc2);
    vst1q_f64(acc + 6, acc3);
}

#else

bool
packedSimdAvailable()
{
    return false;
}

const char *
packedSimdName()
{
    return "portable";
}

void
dotChunk8Simd(const float *a, const double *w, int64_t kc, double *acc)
{
    // Never dispatched (packedSimdAvailable() is false); scalar body so
    // the symbol links on every platform.
    for (int64_t t = 0; t < kc; ++t) {
        const double av = static_cast<double>(a[t]);
        for (int jj = 0; jj < 8; ++jj)
            acc[jj] += av * w[t * 8 + jj];
    }
}

#endif

} // namespace qt8::detail
