#include "tensor/random.h"

#include <cmath>

namespace qt8 {
namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::normal()
{
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

int64_t
Rng::randint(int64_t n)
{
    // Modulo bias is negligible for n << 2^64.
    return static_cast<int64_t>(next() % static_cast<uint64_t>(n));
}

Rng
Rng::fork()
{
    return Rng(next());
}

void
Rng::fillNormal(Tensor &t, double stddev, double mean)
{
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>(normal(mean, stddev));
}

void
Rng::fillUniform(Tensor &t, double lo, double hi)
{
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>(uniform(lo, hi));
}

} // namespace qt8
