/**
 * @file
 * SIMD micro-kernel behind gemmQuantized and the packed KV-cache
 * attention GEMVs (packedDotRows / packedAccumRows). The one routine
 * worth vectorizing without breaking bit-identity is the column-wide
 * FMA: 8 output columns advance together through ascending k, each
 * column's accumulator summed in exactly the scalar order. Products of
 * two floats are exact in double, so hardware FMA (one rounding of an
 * already-exact product) produces the same bits as mul-then-add.
 *
 * Compiled as its own translation unit so only this file gets -mavx2
 * -mfma (x86) — the dispatcher checks __builtin_cpu_supports at
 * runtime, keeping the library safe on older cores. On aarch64 the
 * NEON path compiles under the default flags; anywhere else the
 * portable fallback in packed.cc is used.
 */
#ifndef QT8_TENSOR_PACKED_SIMD_H
#define QT8_TENSOR_PACKED_SIMD_H

#include <cstdint>

namespace qt8::detail {

/// True when the SIMD dot kernel can run on this machine (checked once).
bool packedSimdAvailable();

/// "avx2", "neon", or "portable" — surfaced by the kernel benches.
const char *packedSimdName();

/**
 * acc[jj] += sum over t in [0, kc) of a[t] * w[t*8 + jj], jj in 0..7.
 * @p w is the decoded weight panel, 8 doubles per k step (column-
 * interleaved); @p acc holds 8 running double accumulators. Ascending-k
 * per lane: bit-identical to the scalar loop.
 *
 * Only call when packedSimdAvailable(); the portable build compiles a
 * scalar body so the symbol always links.
 */
void dotChunk8Simd(const float *a, const double *w, int64_t kc,
                   double *acc);

} // namespace qt8::detail

#endif // QT8_TENSOR_PACKED_SIMD_H
