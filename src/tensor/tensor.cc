#include "tensor/tensor.h"

#include <stdexcept>

namespace qt8 {

Tensor
Tensor::full(std::vector<int64_t> shape, float value)
{
    Tensor t(std::move(shape));
    std::fill_n(t.data(), t.numel(), value);
    return t;
}

Tensor
Tensor::reshaped(std::vector<int64_t> new_shape) const
{
    if (computeNumel(new_shape) != numel())
        throw std::invalid_argument("reshape: element count mismatch");
    Tensor t = *this;
    t.shape_ = std::move(new_shape);
    return t;
}

} // namespace qt8
