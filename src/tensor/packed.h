/**
 * @file
 * True 8-bit packed weight storage and the fused quantized GEMM.
 *
 * Every earlier layer of this codebase *fake*-quantizes: tensors are
 * rounded onto an 8-bit format's value grid but stay resident as fp32,
 * so the paper's formats buy accuracy results and zero speed or memory.
 * PackedTensor makes the codes real: a tensor whose values live on a
 * grid format's value grid is stored as one uint8 *code* per element
 * (the index into Quantizer::gridValues(), i.e. the same 256-entry
 * decode table the paper's hardware uses, section 4) plus a per-tensor
 * power-of-two scale — 1 byte/element instead of 4.
 *
 * gemmQuantized() consumes the codes directly: the tile micro-kernel
 * decodes a [kc x 8] panel through the code table right before the FMA
 * loop (AVX2 / NEON behind a portable fallback, see packed_simd.h) and
 * applies the consumer's element-wise epilogue — bias add, GeLU,
 * residual add, quantize-back — on the output tile while it is hot,
 * instead of as separate full-tensor passes. This is the paper's
 * "operation fusion" (section 4.2) turned into a speed feature.
 *
 * Numerics contract: gemmQuantized is **bit-identical** to
 * decode-to-fp32 followed by gemm()/gemmReference() plus the separate
 * epilogue passes. Each output element is accumulated in double in
 * ascending-k order (float*float products are exact in double, so FMA
 * contraction cannot change a bit), the SIMD width spans *output
 * columns* rather than the k dimension, and every epilogue stage
 * replicates the element-wise math of the pass it replaces.
 */
#ifndef QT8_TENSOR_PACKED_H
#define QT8_TENSOR_PACKED_H

#include <cstdint>
#include <string>
#include <vector>

#include "numerics/quantizer.h"
#include "tensor/tensor.h"

namespace qt8 {

/**
 * Contiguous row-major uint8 codes + per-tensor scale for a rank-2
 * tensor quantized onto a <=256-value grid format.
 *
 * Packing quantizes x*scale onto the grid and stores the grid index;
 * decoding returns gridValues()[code] * (1/scale) with the same float
 * rounding TensorScaler uses, folded into the decode table so the
 * kernel pays nothing for it. With scale == 1 (the weight path —
 * QuantSession::quantWeight applies no per-tensor scale) the decoded
 * value is bit-identical to Quantizer::quantize of the original.
 */
class PackedTensor
{
  public:
    PackedTensor() = default;

    /// True when @p q's grid fits 8-bit codes (grid format with at most
    /// 256 representable values: posit(8,*), E4M3, E5M2, ...).
    static bool packable(const Quantizer &q)
    {
        return !q.gridValues().empty() && q.gridValues().size() <= 256;
    }

    /**
     * Quantize @p t (element-wise, times @p scale) onto @p q's grid and
     * pack the codes. Throws std::invalid_argument for non-packable
     * quantizers, non-rank-2 tensors, and NaN elements (no grid code
     * represents NaN).
     */
    static PackedTensor pack(const Tensor &t, const Quantizer &q,
                             float scale = 1.0f);

    /// Decode every code back to fp32 (the reference the fused kernel
    /// is tested against). Bit-identical to quantize-then-scale of the
    /// original tensor.
    Tensor unpack() const;

    bool empty() const { return codes_.empty(); }
    const std::vector<int64_t> &shape() const { return shape_; }
    int64_t dim(int i) const { return shape_[static_cast<size_t>(i)]; }
    int64_t numel() const { return static_cast<int64_t>(codes_.size()); }

    const uint8_t *codes() const { return codes_.data(); }
    /// 256-entry decode table: table()[code] is the decoded value with
    /// the 1/scale fold applied (exact doubles of float values).
    const double *table() const { return table_.data(); }

    float scale() const { return scale_; }
    const std::string &format() const { return format_; }

    /// Resident bytes of the packed representation (codes; the decode
    /// table is 2 KB per tensor). 4x smaller than the fp32 panel it
    /// replaces.
    size_t packedBytes() const { return codes_.size(); }
    /// Bytes of the fp32 tensor this packs (the GEMM's former operand).
    size_t fp32Bytes() const { return codes_.size() * sizeof(float); }

  private:
    std::vector<int64_t> shape_; ///< Rank 2 (rows, cols).
    std::vector<uint8_t> codes_;
    std::vector<double> table_; ///< 256 entries, zero-padded.
    float scale_ = 1.0f;
    std::string format_;
};

/**
 * Element-wise epilogue fused into gemmQuantized's output tiles,
 * applied in stage order to each output element after alpha/beta:
 *
 *  - kBias:     y += data[j]               (addRowBias)
 *  - kGelu:     y = geluScalar(y)          (geluInPlace)
 *  - kResidual: y += data[i * n + j]       (residualAdd's addInPlace;
 *               the operand must already be residual-point quantized)
 *  - kQuant:    y = quant->quantize(y), accumulating the same
 *               per-element QuantHealth counters as the health-aware
 *               Quantizer::quantizeInPlace overload into *health when
 *               non-null (per-thread partials, merged once at the end;
 *               counts are exact, double sums may differ from the
 *               serial pass in the last ulp).
 *
 * Stage data is borrowed; it must outlive the gemmQuantized call.
 */
struct GemmEpilogue
{
    struct Stage
    {
        enum class Kind { kBias, kGelu, kResidual, kQuant };
        Kind kind;
        const float *data = nullptr;      ///< kBias [n] / kResidual [m,n].
        const Quantizer *quant = nullptr; ///< kQuant.
        QuantHealth *health = nullptr;    ///< kQuant, optional.
    };

    std::vector<Stage> stages;

    GemmEpilogue &bias(const float *row)
    {
        stages.push_back({Stage::Kind::kBias, row, nullptr, nullptr});
        return *this;
    }
    GemmEpilogue &gelu()
    {
        stages.push_back({Stage::Kind::kGelu, nullptr, nullptr, nullptr});
        return *this;
    }
    GemmEpilogue &residual(const float *full)
    {
        stages.push_back({Stage::Kind::kResidual, full, nullptr, nullptr});
        return *this;
    }
    GemmEpilogue &quant(const Quantizer *q, QuantHealth *health = nullptr)
    {
        stages.push_back({Stage::Kind::kQuant, nullptr, q, health});
        return *this;
    }
};

/**
 * C = alpha * op(A) . op(W) + beta * C, then the fused epilogue.
 * A is fp32 (m x k after optional transpose); W is packed 8-bit codes
 * (k x n after optional transpose: trans_w=true takes W stored [n, k],
 * the Linear weight layout). Accumulation is double in ascending-k
 * order per output element — bit-identical to gemm()/gemmReference()
 * over unpack(W), with the epilogue matching the separate passes bit
 * for bit. Parallel over (64-row x 8-column) output tiles, so m=1
 * decode GEMVs still spread over cores; the micro-kernel decodes each
 * [kc x 8] code panel through the 256-entry table and runs the
 * column-vectorized FMA loop (AVX2/NEON when available).
 */
void gemmQuantized(const Tensor &a, bool trans_a, const PackedTensor &w,
                   bool trans_w, Tensor &c, float alpha = 1.0f,
                   float beta = 0.0f, const GemmEpilogue *epi = nullptr);

/**
 * The unfused reference: unpack W to fp32, run gemmReference, then
 * apply the epilogue stages as separate serial element-wise passes.
 * Bit-identical to gemmQuantized (the equivalence tests' oracle).
 */
void gemmQuantizedReference(const Tensor &a, bool trans_a,
                            const PackedTensor &w, bool trans_w, Tensor &c,
                            float alpha = 1.0f, float beta = 0.0f,
                            const GemmEpilogue *epi = nullptr);

/**
 * Scratch for the packed KV-cache attention GEMVs below: the decoded
 * [kc x 8] double panel, reused across calls so a decode step allocates
 * it once per attention forward instead of once per (batch, head).
 */
struct PackedKvScratch
{
    std::vector<double> panel;
};

/**
 * Decode-in-kernel QK^T GEMV over a packed KV panel:
 *
 *   out[r] = float( sum_{c=0}^{cols-1} q[c] * table[codes[r*stride + c]] )
 *
 * for r in [0, rows) — i.e. gemm(q[1 x cols], false, K[rows x cols],
 * true, out) where K's rows live as uint8 codes with row stride
 * @p stride (a head's d_head-column slice of a [*, d_model] code
 * panel). Accumulation is double in ascending-c order per output with
 * one final float cast, so the result is bit-identical to extracting
 * the head into fp32 and calling gemm()/gemmReference(). Eight outputs
 * advance together through the SIMD dot kernel (AVX2/NEON/portable);
 * codes >= the format's grid size decode to NaN and poison only the
 * outputs that read them.
 */
void packedDotRows(const float *q, const uint8_t *codes,
                   const double *table, int64_t rows, int64_t cols,
                   int64_t stride, float *out, PackedKvScratch &scratch);

/**
 * Decode-in-kernel attn.V GEMV over a packed KV panel:
 *
 *   out[c] = float( sum_{r=0}^{rows-1} w[r] * table[codes[r*stride + c]] )
 *
 * for c in [0, cols) — i.e. gemm(w[1 x rows], false, V[rows x cols],
 * false, out) with V stored as codes. Same ascending-r double
 * accumulation and single final float cast as gemm(); bit-identical to
 * the fp32 head-extract path.
 */
void packedAccumRows(const float *w, const uint8_t *codes,
                     const double *table, int64_t rows, int64_t cols,
                     int64_t stride, float *out, PackedKvScratch &scratch);

/**
 * packedDotRows through a page table: logical row r of the sequence
 * lives at physical code row
 *
 *   pages[r / page_size] * page_size + r % page_size
 *
 * of the arena-wide panel @p codes. Only the address computation
 * differs from packedDotRows — the accumulation order (double,
 * ascending c, one final float cast per output) is unchanged, so the
 * result is bit-identical to gathering the pages into a contiguous
 * slab and calling packedDotRows.
 */
void packedDotRowsPaged(const float *q, const uint8_t *codes,
                        const double *table, const int32_t *pages,
                        int64_t page_size, int64_t rows, int64_t cols,
                        int64_t stride, float *out,
                        PackedKvScratch &scratch);

/**
 * packedAccumRows through a page table (see packedDotRowsPaged for the
 * addressing). The per-output double accumulator persists across row
 * chunks — and therefore across page boundaries — exactly as in the
 * contiguous kernel, so no intermediate float rounding is introduced
 * at page seams: bit-identical to the slab kernel on the same rows.
 */
void packedAccumRowsPaged(const float *w, const uint8_t *codes,
                          const double *table, const int32_t *pages,
                          int64_t page_size, int64_t rows, int64_t cols,
                          int64_t stride, float *out,
                          PackedKvScratch &scratch);

} // namespace qt8

#endif // QT8_TENSOR_PACKED_H
