#include "tensor/ops.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qt8 {

void
gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
     Tensor &c, float alpha, float beta)
{
    assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
    const int64_t m = trans_a ? a.dim(1) : a.dim(0);
    const int64_t k = trans_a ? a.dim(0) : a.dim(1);
    const int64_t kb = trans_b ? b.dim(1) : b.dim(0);
    const int64_t n = trans_b ? b.dim(0) : b.dim(1);
    if (k != kb || c.dim(0) != m || c.dim(1) != n)
        throw std::invalid_argument("gemm: shape mismatch");

    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    const int64_t lda = a.dim(1);
    const int64_t ldb = b.dim(1);

#pragma omp parallel for schedule(static) if (m * n * k > 16384)
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            if (!trans_a && !trans_b) {
                const float *ra = pa + i * lda;
                for (int64_t t = 0; t < k; ++t)
                    acc += static_cast<double>(ra[t]) * pb[t * ldb + j];
            } else if (!trans_a && trans_b) {
                const float *ra = pa + i * lda;
                const float *rb = pb + j * ldb;
                for (int64_t t = 0; t < k; ++t)
                    acc += static_cast<double>(ra[t]) * rb[t];
            } else if (trans_a && !trans_b) {
                for (int64_t t = 0; t < k; ++t)
                    acc += static_cast<double>(pa[t * lda + i]) *
                           pb[t * ldb + j];
            } else {
                for (int64_t t = 0; t < k; ++t)
                    acc += static_cast<double>(pa[t * lda + i]) *
                           pb[j * ldb + t];
            }
            const double prev = beta == 0.0f
                ? 0.0
                : static_cast<double>(beta) * pc[i * n + j];
            pc[i * n + j] =
                static_cast<float>(static_cast<double>(alpha) * acc + prev);
        }
    }
}

Tensor
matmul(const Tensor &a, const Tensor &b, bool trans_a, bool trans_b)
{
    const int64_t m = trans_a ? a.dim(1) : a.dim(0);
    const int64_t n = trans_b ? b.dim(0) : b.dim(1);
    Tensor c({m, n});
    gemm(a, trans_a, b, trans_b, c);
    return c;
}

void
addInPlace(Tensor &y, const Tensor &x)
{
    assert(y.numel() == x.numel());
    float *py = y.data();
    const float *px = x.data();
    for (int64_t i = 0; i < y.numel(); ++i)
        py[i] += px[i];
}

void
axpy(Tensor &y, const Tensor &x, float alpha)
{
    assert(y.numel() == x.numel());
    float *py = y.data();
    const float *px = x.data();
    for (int64_t i = 0; i < y.numel(); ++i)
        py[i] += alpha * px[i];
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    Tensor c = a;
    addInPlace(c, b);
    return c;
}

void
scaleInPlace(Tensor &t, float s)
{
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] *= s;
}

void
addRowBias(Tensor &t, const Tensor &bias)
{
    assert(t.rank() == 2 && bias.numel() == t.dim(1));
    const int64_t m = t.dim(0);
    const int64_t n = t.dim(1);
    float *p = t.data();
    const float *pb = bias.data();
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            p[i * n + j] += pb[j];
}

Tensor
sumRows(const Tensor &t)
{
    assert(t.rank() == 2);
    const int64_t m = t.dim(0);
    const int64_t n = t.dim(1);
    Tensor out({n});
    const float *p = t.data();
    for (int64_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int64_t i = 0; i < m; ++i)
            acc += p[i * n + j];
        out.at(j) = static_cast<float>(acc);
    }
    return out;
}

void
softmaxRowsInPlace(Tensor &t)
{
    const int64_t cols = t.dim(t.rank() - 1);
    const int64_t rows = t.numel() / cols;
    float *p = t.data();
    for (int64_t r = 0; r < rows; ++r) {
        float *row = p + r * cols;
        float m = row[0];
        for (int64_t j = 1; j < cols; ++j)
            m = std::max(m, row[j]);
        double sum = 0.0;
        for (int64_t j = 0; j < cols; ++j) {
            row[j] = std::exp(row[j] - m);
            sum += row[j];
        }
        const float inv = static_cast<float>(1.0 / sum);
        for (int64_t j = 0; j < cols; ++j)
            row[j] *= inv;
    }
}

float
geluScalar(float x)
{
    // BERT's tanh approximation of GeLU.
    const float c = 0.7978845608028654f; // sqrt(2/pi)
    const float inner = c * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

float
geluGradScalar(float x)
{
    const float c = 0.7978845608028654f;
    const float x3 = x * x * x;
    const float inner = c * (x + 0.044715f * x3);
    const float t = std::tanh(inner);
    const float sech2 = 1.0f - t * t;
    const float dinner = c * (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * sech2 * dinner;
}

void
geluInPlace(Tensor &t)
{
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = geluScalar(p[i]);
}

double
amax(const Tensor &t)
{
    double m = 0.0;
    const float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(p[i])));
    return m;
}

double
mean(const Tensor &t)
{
    double acc = 0.0;
    const float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        acc += p[i];
    return t.numel() > 0 ? acc / static_cast<double>(t.numel()) : 0.0;
}

double
sumSquares(const Tensor &t)
{
    double acc = 0.0;
    const float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        acc += static_cast<double>(p[i]) * p[i];
    return acc;
}

int64_t
rowArgmax(const Tensor &t, int64_t row)
{
    assert(t.rank() == 2);
    const int64_t n = t.dim(1);
    const float *p = t.data() + row * n;
    int64_t best = 0;
    for (int64_t j = 1; j < n; ++j)
        if (p[j] > p[best])
            best = j;
    return best;
}

bool
allFinite(const Tensor &t)
{
    const float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        if (!std::isfinite(p[i]))
            return false;
    return true;
}

} // namespace qt8
