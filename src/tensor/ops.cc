#include "tensor/ops.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/parallel.h"
#include "util/trace.h"

namespace qt8 {
namespace {

/// Block edge of the (m, n) tile grid. 64x64 output tiles with full-k
/// contiguous panels keep both operands' working set (2 * 64 * k
/// floats) within L2 for the model sizes we run.
constexpr int64_t kGemmBlock = 64;

/// Same work threshold as the original kernel.
constexpr int64_t kGemmParallelFlops = 16384;

void
checkGemmShapes(const Tensor &a, bool trans_a, const Tensor &b,
                bool trans_b, const Tensor &c, int64_t &m, int64_t &n,
                int64_t &k)
{
    assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
    m = trans_a ? a.dim(1) : a.dim(0);
    k = trans_a ? a.dim(0) : a.dim(1);
    const int64_t kb = trans_b ? b.dim(1) : b.dim(0);
    n = trans_b ? b.dim(0) : b.dim(1);
    if (k != kb || c.dim(0) != m || c.dim(1) != n)
        throw std::invalid_argument("gemm: shape mismatch");
}

} // namespace

void
gemm(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
     Tensor &c, float alpha, float beta)
{
    QT8_TRACE_SCOPE("gemm");
    int64_t m, n, k;
    checkGemmShapes(a, trans_a, b, trans_b, c, m, n, k);

    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    const int64_t lda = a.dim(1);
    const int64_t ldb = b.dim(1);

    // Flattened tile space: every tile owns a disjoint output block, so
    // scheduling is race-free, and a 1 x n GEMV still yields n/block
    // independent tiles to spread over cores.
    const int64_t tiles_m = (m + kGemmBlock - 1) / kGemmBlock;
    const int64_t tiles_n = (n + kGemmBlock - 1) / kGemmBlock;
    const int64_t tiles = tiles_m * tiles_n;
    const bool par =
        m * n * k > kGemmParallelFlops && kernelThreads() > 1;

#pragma omp parallel if (par)
    {
        // Per-thread panels for the strided operand(s): rows of op(A)
        // and columns of op(B) are copied once per tile into contiguous
        // length-k runs, turning every inner product into a unit-stride
        // dot. Ascending-k order is preserved, so results match the
        // naive loop bit for bit.
        std::vector<float> a_pack;
        std::vector<float> b_pack;

#pragma omp for schedule(static)
        for (int64_t tile = 0; tile < tiles; ++tile) {
            const int64_t i0 = (tile / tiles_n) * kGemmBlock;
            const int64_t j0 = (tile % tiles_n) * kGemmBlock;
            const int64_t i1 = std::min(m, i0 + kGemmBlock);
            const int64_t j1 = std::min(n, j0 + kGemmBlock);
            const int64_t bm = i1 - i0;
            const int64_t bn = j1 - j0;

            if (trans_a) {
                // op(A) row i is column i of A: stride-lda gather.
                a_pack.resize(static_cast<size_t>(bm) * k);
                for (int64_t t = 0; t < k; ++t) {
                    const float *src = pa + t * lda + i0;
                    for (int64_t ii = 0; ii < bm; ++ii)
                        a_pack[static_cast<size_t>(ii) * k + t] = src[ii];
                }
            }
            if (!trans_b) {
                // op(B) column j is column j of B: stride-ldb gather.
                b_pack.resize(static_cast<size_t>(bn) * k);
                for (int64_t t = 0; t < k; ++t) {
                    const float *src = pb + t * ldb + j0;
                    for (int64_t jj = 0; jj < bn; ++jj)
                        b_pack[static_cast<size_t>(jj) * k + t] = src[jj];
                }
            }

            for (int64_t i = i0; i < i1; ++i) {
                const float *ra = trans_a
                    ? a_pack.data() + (i - i0) * k
                    : pa + i * lda;
                float *rc = pc + i * n;
                for (int64_t j = j0; j < j1; ++j) {
                    const float *rb = trans_b
                        ? pb + j * ldb
                        : b_pack.data() + (j - j0) * k;
                    double acc = 0.0;
                    for (int64_t t = 0; t < k; ++t)
                        acc += static_cast<double>(ra[t]) * rb[t];
                    const double prev = beta == 0.0f
                        ? 0.0
                        : static_cast<double>(beta) * rc[j];
                    rc[j] = static_cast<float>(
                        static_cast<double>(alpha) * acc + prev);
                }
            }
        }
    }
}

void
gemmReference(const Tensor &a, bool trans_a, const Tensor &b, bool trans_b,
              Tensor &c, float alpha, float beta)
{
    int64_t m, n, k;
    checkGemmShapes(a, trans_a, b, trans_b, c, m, n, k);

    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    const int64_t lda = a.dim(1);
    const int64_t ldb = b.dim(1);

#pragma omp parallel for schedule(static) \
    if (m * n * k > kGemmParallelFlops && kernelThreads() > 1)
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            if (!trans_a && !trans_b) {
                const float *ra = pa + i * lda;
                for (int64_t t = 0; t < k; ++t)
                    acc += static_cast<double>(ra[t]) * pb[t * ldb + j];
            } else if (!trans_a && trans_b) {
                const float *ra = pa + i * lda;
                const float *rb = pb + j * ldb;
                for (int64_t t = 0; t < k; ++t)
                    acc += static_cast<double>(ra[t]) * rb[t];
            } else if (trans_a && !trans_b) {
                for (int64_t t = 0; t < k; ++t)
                    acc += static_cast<double>(pa[t * lda + i]) *
                           pb[t * ldb + j];
            } else {
                for (int64_t t = 0; t < k; ++t)
                    acc += static_cast<double>(pa[t * lda + i]) *
                           pb[j * ldb + t];
            }
            const double prev = beta == 0.0f
                ? 0.0
                : static_cast<double>(beta) * pc[i * n + j];
            pc[i * n + j] =
                static_cast<float>(static_cast<double>(alpha) * acc + prev);
        }
    }
}

Tensor
matmul(const Tensor &a, const Tensor &b, bool trans_a, bool trans_b)
{
    const int64_t m = trans_a ? a.dim(1) : a.dim(0);
    const int64_t n = trans_b ? b.dim(0) : b.dim(1);
    Tensor c({m, n});
    gemm(a, trans_a, b, trans_b, c);
    return c;
}

void
addInPlace(Tensor &y, const Tensor &x)
{
    assert(y.numel() == x.numel());
    float *py = y.data();
    const float *px = x.data();
    const int64_t n = y.numel();
#pragma omp parallel for schedule(static) if (useParallel(n))
    for (int64_t i = 0; i < n; ++i)
        py[i] += px[i];
}

void
axpy(Tensor &y, const Tensor &x, float alpha)
{
    assert(y.numel() == x.numel());
    float *py = y.data();
    const float *px = x.data();
    const int64_t n = y.numel();
#pragma omp parallel for schedule(static) if (useParallel(n))
    for (int64_t i = 0; i < n; ++i)
        py[i] += alpha * px[i];
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    Tensor c = a;
    addInPlace(c, b);
    return c;
}

void
scaleInPlace(Tensor &t, float s)
{
    float *p = t.data();
    const int64_t n = t.numel();
#pragma omp parallel for schedule(static) if (useParallel(n))
    for (int64_t i = 0; i < n; ++i)
        p[i] *= s;
}

void
addRowBias(Tensor &t, const Tensor &bias)
{
    assert(t.rank() == 2 && bias.numel() == t.dim(1));
    const int64_t m = t.dim(0);
    const int64_t n = t.dim(1);
    float *p = t.data();
    const float *pb = bias.data();
#pragma omp parallel for schedule(static) if (useParallel(m * n))
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            p[i * n + j] += pb[j];
}

namespace {

/// Column-stripe width for the row-sum kernels: the per-stripe double
/// accumulators stay on the stack and each matrix row is consumed as a
/// contiguous 1 KB run.
constexpr int64_t kSumRowsStripe = 256;

/**
 * Shared core of sumRows/sumRowsAdd: row-major traversal (the previous
 * column-major walk touched a fresh cache line per element) accumulating
 * into per-column doubles, one independent column stripe per iteration
 * so the stripe loop parallelizes. Per column the sum is still taken in
 * ascending row order, identical to the old kernel's rounding.
 * @p store is called once per column with the finished double sum.
 */
template <typename Store>
void
sumRowsImpl(const float *p, int64_t m, int64_t n, Store store)
{
    const int64_t stripes = (n + kSumRowsStripe - 1) / kSumRowsStripe;
#pragma omp parallel for schedule(static) if (useParallel(m * n))
    for (int64_t s = 0; s < stripes; ++s) {
        const int64_t j0 = s * kSumRowsStripe;
        const int64_t j1 = std::min(n, j0 + kSumRowsStripe);
        double acc[kSumRowsStripe] = {};
        for (int64_t i = 0; i < m; ++i) {
            const float *row = p + i * n;
            for (int64_t j = j0; j < j1; ++j)
                acc[j - j0] += row[j];
        }
        for (int64_t j = j0; j < j1; ++j)
            store(j, acc[j - j0]);
    }
}

} // namespace

Tensor
sumRows(const Tensor &t)
{
    assert(t.rank() == 2);
    const int64_t m = t.dim(0);
    const int64_t n = t.dim(1);
    Tensor out({n});
    float *po = out.data();
    sumRowsImpl(t.data(), m, n, [po](int64_t j, double acc) {
        po[j] = static_cast<float>(acc);
    });
    return out;
}

void
sumRowsAdd(Tensor &acc, const Tensor &t)
{
    assert(t.rank() == 2 && acc.numel() == t.dim(1));
    const int64_t m = t.dim(0);
    const int64_t n = t.dim(1);
    float *pa = acc.data();
    sumRowsImpl(t.data(), m, n, [pa](int64_t j, double sum) {
        pa[j] += static_cast<float>(sum);
    });
}

void
softmaxRowsInPlace(Tensor &t)
{
    QT8_TRACE_SCOPE("softmax");
    const int64_t cols = t.rank() > 0 ? t.dim(t.rank() - 1) : 0;
    if (cols == 0)
        return; // nothing to normalize (and numel/cols would divide by 0)
    const int64_t rows = t.numel() / cols;
    float *p = t.data();
#pragma omp parallel for schedule(static) if (useParallel(rows * cols))
    for (int64_t r = 0; r < rows; ++r) {
        float *row = p + r * cols;
        float m = row[0];
        for (int64_t j = 1; j < cols; ++j)
            m = std::max(m, row[j]);
        double sum = 0.0;
        for (int64_t j = 0; j < cols; ++j) {
            row[j] = std::exp(row[j] - m);
            sum += row[j];
        }
        const float inv = static_cast<float>(1.0 / sum);
        for (int64_t j = 0; j < cols; ++j)
            row[j] *= inv;
    }
}

float
geluScalar(float x)
{
    // BERT's tanh approximation of GeLU.
    const float c = 0.7978845608028654f; // sqrt(2/pi)
    const float inner = c * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

float
geluGradScalar(float x)
{
    const float c = 0.7978845608028654f;
    const float x3 = x * x * x;
    const float inner = c * (x + 0.044715f * x3);
    const float t = std::tanh(inner);
    const float sech2 = 1.0f - t * t;
    const float dinner = c * (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * sech2 * dinner;
}

void
geluInPlace(Tensor &t)
{
    QT8_TRACE_SCOPE("gelu");
    float *p = t.data();
    const int64_t n = t.numel();
#pragma omp parallel for schedule(static) if (useParallel(n))
    for (int64_t i = 0; i < n; ++i)
        p[i] = geluScalar(p[i]);
}

double
amax(const Tensor &t)
{
    // Skip non-finite values explicitly, matching the scaling scans in
    // the quantizer (std::max used to drop NaN silently only when it
    // was the second argument, and inf poisoned the result).
    double m = 0.0;
    const float *p = t.data();
    const int64_t n = t.numel();
#pragma omp parallel for schedule(static) reduction(max : m) \
    if (useParallel(n))
    for (int64_t i = 0; i < n; ++i) {
        const double a = std::fabs(static_cast<double>(p[i]));
        if (std::isfinite(a) && a > m)
            m = a;
    }
    return m;
}

double
mean(const Tensor &t)
{
    double acc = 0.0;
    const float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        acc += p[i];
    return t.numel() > 0 ? acc / static_cast<double>(t.numel()) : 0.0;
}

double
sumSquares(const Tensor &t)
{
    double acc = 0.0;
    const float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        acc += static_cast<double>(p[i]) * p[i];
    return acc;
}

int64_t
rowArgmax(const Tensor &t, int64_t row)
{
    assert(t.rank() == 2);
    const int64_t n = t.dim(1);
    const float *p = t.data() + row * n;
    // NaN entries are skipped so the result does not depend on where a
    // NaN lands (p[j] > NaN is always false, which used to freeze the
    // answer at whatever index preceded it).
    int64_t best = -1;
    for (int64_t j = 0; j < n; ++j) {
        if (std::isnan(p[j]))
            continue;
        if (best < 0 || p[j] > p[best])
            best = j;
    }
    return best < 0 ? 0 : best;
}

bool
allFinite(const Tensor &t)
{
    const float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        if (!std::isfinite(p[i]))
            return false;
    return true;
}

} // namespace qt8
