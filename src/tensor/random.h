/**
 * @file
 * Deterministic random number generation (xoshiro256++), used for all
 * data synthesis and weight initialization so every experiment is
 * reproducible from a printed seed. No OS entropy or wall clock is ever
 * consulted.
 */
#ifndef QT8_TENSOR_RANDOM_H
#define QT8_TENSOR_RANDOM_H

#include <cstdint>

#include "tensor/tensor.h"

namespace qt8 {

/// xoshiro256++ PRNG seeded via SplitMix64.
class Rng
{
  public:
    explicit Rng(uint64_t seed);

    /// Next raw 64-bit value.
    uint64_t next();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Standard normal via Box-Muller.
    double normal();

    /// Normal with the given mean / stddev.
    double normal(double mean, double stddev);

    /// Uniform integer in [0, n).
    int64_t randint(int64_t n);

    /// Fork an independent stream (for per-component seeding).
    Rng fork();

    /// Fill a tensor with N(0, stddev^2).
    void fillNormal(Tensor &t, double stddev = 1.0, double mean = 0.0);

    /// Fill a tensor with U(lo, hi).
    void fillUniform(Tensor &t, double lo, double hi);

  private:
    uint64_t s_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace qt8

#endif // QT8_TENSOR_RANDOM_H
