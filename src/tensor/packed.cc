#include "tensor/packed.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"
#include "tensor/packed_simd.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace qt8 {

PackedTensor
PackedTensor::pack(const Tensor &t, const Quantizer &q, float scale)
{
    if (!packable(q))
        throw std::invalid_argument(
            "PackedTensor: format not packable (need a <=256-value "
            "grid): " + q.name());
    if (t.rank() != 2)
        throw std::invalid_argument("PackedTensor: rank-2 tensors only");

    PackedTensor p;
    p.shape_ = t.shape();
    p.format_ = q.name();
    p.scale_ = scale;

    // Decode table with the 1/scale fold. The float multiply matches
    // TensorScaler's `quantize(x*s) * (float)(1/s)` rounding; scale==1
    // makes both multiplies exact identities.
    const std::vector<float> &vals = q.gridValues();
    const float inv = static_cast<float>(1.0 / static_cast<double>(scale));
    p.table_.assign(256, 0.0);
    for (size_t i = 0; i < vals.size(); ++i)
        p.table_[i] = static_cast<double>(vals[i] * inv);

    const int64_t numel = t.numel();
    p.codes_.resize(static_cast<size_t>(numel));
    const float *src = t.data();
    for (int64_t i = 0; i < numel; ++i) {
        const float x = src[i];
        if (std::isnan(x))
            throw std::invalid_argument(
                "PackedTensor: NaN element has no grid code");
        p.codes_[static_cast<size_t>(i)] =
            static_cast<uint8_t>(q.gridIndex(x * scale));
    }
    return p;
}

Tensor
PackedTensor::unpack() const
{
    Tensor out(shape_);
    float *dst = out.data();
    for (int64_t i = 0; i < out.numel(); ++i)
        dst[i] = static_cast<float>(table_[codes_[static_cast<size_t>(i)]]);
    return out;
}

namespace {

/// Output tile: 64 rows x 8 columns (8 = the SIMD accumulator width).
constexpr int64_t kPackedMBlock = 64;
constexpr int64_t kPackedNR = 8;
/// k-chunk of the decoded panel: 256 x 8 doubles = 16 KB, L1-resident,
/// shared by every row of the tile before the next chunk is decoded.
constexpr int64_t kPackedKChunk = 256;
/// Same parallelism work threshold as the fp32 blocked GEMM.
constexpr int64_t kPackedParallelFlops = 16384;

/// Scalar fallback for the column-interleaved dot (same loop the SIMD
/// kernel vectorizes; products are exact in double either way).
void
dotChunk8Portable(const float *a, const double *w, int64_t kc, double *acc)
{
    for (int64_t t = 0; t < kc; ++t) {
        const double av = static_cast<double>(a[t]);
        for (int jj = 0; jj < kPackedNR; ++jj)
            acc[jj] += av * w[t * kPackedNR + jj];
    }
}

using DotFn = void (*)(const float *, const double *, int64_t, double *);

DotFn
pickDotKernel()
{
    return detail::packedSimdAvailable() ? detail::dotChunk8Simd
                                         : dotChunk8Portable;
}

/**
 * Apply the epilogue stages to one output element. @p local holds one
 * QuantHealth per stage (per-thread; merged by the caller) so the
 * health counters match the health-aware quantizeInPlace overload
 * element for element.
 */
inline float
applyEpilogue(const GemmEpilogue &epi, QuantHealth *local, float y,
              int64_t i, int64_t j, int64_t n)
{
    for (size_t s = 0; s < epi.stages.size(); ++s) {
        const GemmEpilogue::Stage &st = epi.stages[s];
        switch (st.kind) {
          case GemmEpilogue::Stage::Kind::kBias:
            y += st.data[j];
            break;
          case GemmEpilogue::Stage::Kind::kGelu:
            y = geluScalar(y);
            break;
          case GemmEpilogue::Stage::Kind::kResidual:
            y += st.data[i * n + j];
            break;
          case GemmEpilogue::Stage::Kind::kQuant: {
            const float q = st.quant->quantize(y);
            if (st.health != nullptr) {
                QuantHealth &h = local[s];
                ++h.count;
                if (std::isfinite(y)) {
                    const double a = std::fabs(static_cast<double>(y));
                    if (a > h.amax)
                        h.amax = a;
                    if (a > st.quant->maxRepresentable())
                        ++h.saturated;
                    if (y != 0.0f && q == 0.0f)
                        ++h.underflow;
                    h.abs_err_sum += std::fabs(
                        static_cast<double>(y) - static_cast<double>(q));
                } else {
                    ++h.nonfinite;
                }
            }
            y = q;
            break;
          }
        }
    }
    return y;
}

void
checkQuantizedShapes(const Tensor &a, bool trans_a, const PackedTensor &w,
                     bool trans_w, const Tensor &c, int64_t &m, int64_t &n,
                     int64_t &k)
{
    if (a.rank() != 2 || c.rank() != 2 || w.shape().size() != 2)
        throw std::invalid_argument("gemmQuantized: rank-2 operands only");
    m = trans_a ? a.dim(1) : a.dim(0);
    k = trans_a ? a.dim(0) : a.dim(1);
    const int64_t wk = trans_w ? w.dim(1) : w.dim(0);
    n = trans_w ? w.dim(0) : w.dim(1);
    if (k != wk || c.dim(0) != m || c.dim(1) != n)
        throw std::invalid_argument("gemmQuantized: shape mismatch");
}

} // namespace

void
gemmQuantized(const Tensor &a, bool trans_a, const PackedTensor &w,
              bool trans_w, Tensor &c, float alpha, float beta,
              const GemmEpilogue *epi)
{
    QT8_TRACE_SCOPE("gemm_quantized");
    int64_t m, n, k;
    checkQuantizedShapes(a, trans_a, w, trans_w, c, m, n, k);

    static const DotFn dot = pickDotKernel();

    const float *pa = a.data();
    float *pc = c.data();
    const uint8_t *codes = w.codes();
    const double *table = w.table();
    const int64_t lda = a.dim(1);
    const int64_t ldw = w.dim(1); // code-row stride

    const int64_t tiles_m = (m + kPackedMBlock - 1) / kPackedMBlock;
    const int64_t strips_n = (n + kPackedNR - 1) / kPackedNR;
    const int64_t tiles = tiles_m * strips_n;
    const bool par =
        m * n * k > kPackedParallelFlops && kernelThreads() > 1;
    const size_t n_stages = epi != nullptr ? epi->stages.size() : 0;

#pragma omp parallel if (par)
    {
        // Per-thread scratch: the op(A) pack for trans_a (full-k rows,
        // as in the fp32 blocked GEMM), the decoded [kc x 8] weight
        // panel, the per-row accumulators, and per-stage health
        // partials (merged once at the end).
        std::vector<float> a_pack;
        std::vector<double> wdec(
            static_cast<size_t>(kPackedKChunk * kPackedNR));
        std::vector<double> acc(
            static_cast<size_t>(kPackedMBlock * kPackedNR));
        std::vector<QuantHealth> local(n_stages);

#pragma omp for schedule(static)
        for (int64_t tile = 0; tile < tiles; ++tile) {
            const int64_t i0 = (tile / strips_n) * kPackedMBlock;
            const int64_t j0 = (tile % strips_n) * kPackedNR;
            const int64_t i1 = std::min(m, i0 + kPackedMBlock);
            const int64_t bm = i1 - i0;
            const int64_t bn = std::min(n - j0, kPackedNR);

            if (trans_a) {
                // op(A) row i is column i of A: stride-lda gather.
                a_pack.resize(static_cast<size_t>(bm) * k);
                for (int64_t t = 0; t < k; ++t) {
                    const float *src = pa + t * lda + i0;
                    for (int64_t ii = 0; ii < bm; ++ii)
                        a_pack[static_cast<size_t>(ii) * k + t] = src[ii];
                }
            }

            std::fill(acc.begin(),
                      acc.begin() + static_cast<size_t>(bm) * kPackedNR,
                      0.0);

            for (int64_t k0 = 0; k0 < k; k0 += kPackedKChunk) {
                const int64_t kc = std::min(kPackedKChunk, k - k0);
                // Decode the code panel through the 256-entry table
                // into column-interleaved doubles; lanes beyond bn are
                // zero so their (discarded) accumulators stay inert.
                if (bn < kPackedNR)
                    std::fill(wdec.begin(),
                              wdec.begin() +
                                  static_cast<size_t>(kc) * kPackedNR,
                              0.0);
                if (trans_w) {
                    // op(W) column j is code row j: contiguous k run.
                    for (int64_t jj = 0; jj < bn; ++jj) {
                        const uint8_t *row = codes + (j0 + jj) * ldw + k0;
                        for (int64_t t = 0; t < kc; ++t)
                            wdec[static_cast<size_t>(t * kPackedNR + jj)] =
                                table[row[t]];
                    }
                } else {
                    // op(W) column j is code column j: stride-ldw walk.
                    for (int64_t t = 0; t < kc; ++t) {
                        const uint8_t *row = codes + (k0 + t) * ldw + j0;
                        for (int64_t jj = 0; jj < bn; ++jj)
                            wdec[static_cast<size_t>(t * kPackedNR + jj)] =
                                table[row[jj]];
                    }
                }

                for (int64_t ii = 0; ii < bm; ++ii) {
                    const float *ra = trans_a
                        ? a_pack.data() + ii * k + k0
                        : pa + (i0 + ii) * lda + k0;
                    dot(ra, wdec.data(), kc,
                        acc.data() + ii * kPackedNR);
                }
            }

            // alpha/beta + fused epilogue on the hot output tile; the
            // final rounding matches gemm() exactly (double alpha*acc
            // + beta*prev, one cast to float).
            for (int64_t ii = 0; ii < bm; ++ii) {
                float *rc = pc + (i0 + ii) * n;
                for (int64_t jj = 0; jj < bn; ++jj) {
                    const int64_t j = j0 + jj;
                    const double av =
                        acc[static_cast<size_t>(ii * kPackedNR + jj)];
                    const double prev = beta == 0.0f
                        ? 0.0
                        : static_cast<double>(beta) * rc[j];
                    float y = static_cast<float>(
                        static_cast<double>(alpha) * av + prev);
                    if (epi != nullptr)
                        y = applyEpilogue(*epi, local.data(), y, i0 + ii,
                                          j, n);
                    rc[j] = y;
                }
            }
        }

        if (n_stages > 0) {
#pragma omp critical(qt8_gemm_quantized_health)
            for (size_t s = 0; s < n_stages; ++s) {
                if (epi->stages[s].health != nullptr)
                    epi->stages[s].health->merge(local[s]);
            }
        }
    }
}

void
packedDotRows(const float *q, const uint8_t *codes, const double *table,
              int64_t rows, int64_t cols, int64_t stride, float *out,
              PackedKvScratch &scratch)
{
    static const DotFn dot = pickDotKernel();
    scratch.panel.resize(
        static_cast<size_t>(kPackedKChunk * kPackedNR));
    double *wdec = scratch.panel.data();
    double acc[kPackedNR];

    for (int64_t r0 = 0; r0 < rows; r0 += kPackedNR) {
        const int64_t bn = std::min(rows - r0, kPackedNR);
        std::fill(acc, acc + kPackedNR, 0.0);
        // The k dimension here is the column run of each code row
        // (contiguous), chunked so the decoded panel stays L1-resident.
        for (int64_t c0 = 0; c0 < cols; c0 += kPackedKChunk) {
            const int64_t kc = std::min(kPackedKChunk, cols - c0);
            if (bn < kPackedNR)
                std::fill(wdec, wdec + kc * kPackedNR, 0.0);
            for (int64_t jj = 0; jj < bn; ++jj) {
                const uint8_t *row = codes + (r0 + jj) * stride + c0;
                for (int64_t t = 0; t < kc; ++t)
                    wdec[t * kPackedNR + jj] = table[row[t]];
            }
            dot(q + c0, wdec, kc, acc);
        }
        for (int64_t jj = 0; jj < bn; ++jj)
            out[r0 + jj] = static_cast<float>(acc[jj]);
    }
}

void
packedAccumRows(const float *w, const uint8_t *codes, const double *table,
                int64_t rows, int64_t cols, int64_t stride, float *out,
                PackedKvScratch &scratch)
{
    static const DotFn dot = pickDotKernel();
    scratch.panel.resize(
        static_cast<size_t>(kPackedKChunk * kPackedNR));
    double *wdec = scratch.panel.data();
    double acc[kPackedNR];

    for (int64_t c0 = 0; c0 < cols; c0 += kPackedNR) {
        const int64_t bn = std::min(cols - c0, kPackedNR);
        std::fill(acc, acc + kPackedNR, 0.0);
        // The k dimension is the cache length: stride-@p stride walk
        // down the rows, ascending so accumulation order matches gemm.
        for (int64_t r0 = 0; r0 < rows; r0 += kPackedKChunk) {
            const int64_t kc = std::min(kPackedKChunk, rows - r0);
            if (bn < kPackedNR)
                std::fill(wdec, wdec + kc * kPackedNR, 0.0);
            for (int64_t t = 0; t < kc; ++t) {
                const uint8_t *row = codes + (r0 + t) * stride + c0;
                for (int64_t jj = 0; jj < bn; ++jj)
                    wdec[t * kPackedNR + jj] = table[row[jj]];
            }
            dot(w + r0, wdec, kc, acc);
        }
        for (int64_t jj = 0; jj < bn; ++jj)
            out[c0 + jj] = static_cast<float>(acc[jj]);
    }
}

void
packedDotRowsPaged(const float *q, const uint8_t *codes,
                   const double *table, const int32_t *pages,
                   int64_t page_size, int64_t rows, int64_t cols,
                   int64_t stride, float *out, PackedKvScratch &scratch)
{
    static const DotFn dot = pickDotKernel();
    scratch.panel.resize(
        static_cast<size_t>(kPackedKChunk * kPackedNR));
    double *wdec = scratch.panel.data();
    double acc[kPackedNR];

    for (int64_t r0 = 0; r0 < rows; r0 += kPackedNR) {
        const int64_t bn = std::min(rows - r0, kPackedNR);
        std::fill(acc, acc + kPackedNR, 0.0);
        for (int64_t c0 = 0; c0 < cols; c0 += kPackedKChunk) {
            const int64_t kc = std::min(kPackedKChunk, cols - c0);
            if (bn < kPackedNR)
                std::fill(wdec, wdec + kc * kPackedNR, 0.0);
            for (int64_t jj = 0; jj < bn; ++jj) {
                const int64_t r = r0 + jj;
                const int64_t phys =
                    static_cast<int64_t>(pages[r / page_size]) *
                        page_size +
                    r % page_size;
                const uint8_t *row = codes + phys * stride + c0;
                for (int64_t t = 0; t < kc; ++t)
                    wdec[t * kPackedNR + jj] = table[row[t]];
            }
            dot(q + c0, wdec, kc, acc);
        }
        for (int64_t jj = 0; jj < bn; ++jj)
            out[r0 + jj] = static_cast<float>(acc[jj]);
    }
}

void
packedAccumRowsPaged(const float *w, const uint8_t *codes,
                     const double *table, const int32_t *pages,
                     int64_t page_size, int64_t rows, int64_t cols,
                     int64_t stride, float *out, PackedKvScratch &scratch)
{
    static const DotFn dot = pickDotKernel();
    scratch.panel.resize(
        static_cast<size_t>(kPackedKChunk * kPackedNR));
    double *wdec = scratch.panel.data();
    double acc[kPackedNR];

    for (int64_t c0 = 0; c0 < cols; c0 += kPackedNR) {
        const int64_t bn = std::min(cols - c0, kPackedNR);
        std::fill(acc, acc + kPackedNR, 0.0);
        // acc persists across every r chunk (and page seam): same
        // ascending-r double accumulation as the contiguous kernel.
        for (int64_t r0 = 0; r0 < rows; r0 += kPackedKChunk) {
            const int64_t kc = std::min(kPackedKChunk, rows - r0);
            if (bn < kPackedNR)
                std::fill(wdec, wdec + kc * kPackedNR, 0.0);
            for (int64_t t = 0; t < kc; ++t) {
                const int64_t r = r0 + t;
                const int64_t phys =
                    static_cast<int64_t>(pages[r / page_size]) *
                        page_size +
                    r % page_size;
                const uint8_t *row = codes + phys * stride + c0;
                for (int64_t jj = 0; jj < bn; ++jj)
                    wdec[t * kPackedNR + jj] = table[row[jj]];
            }
            dot(w + r0, wdec, kc, acc);
        }
        for (int64_t jj = 0; jj < bn; ++jj)
            out[c0 + jj] = static_cast<float>(acc[jj]);
    }
}

void
gemmQuantizedReference(const Tensor &a, bool trans_a, const PackedTensor &w,
                       bool trans_w, Tensor &c, float alpha, float beta,
                       const GemmEpilogue *epi)
{
    const Tensor wf = w.unpack();
    gemmReference(a, trans_a, wf, trans_w, c, alpha, beta);
    if (epi == nullptr)
        return;

    // Unfused semantics: each stage is a separate full-tensor pass
    // (addRowBias / geluInPlace / addInPlace / quantizeInPlace), which
    // is what the fused kernel must reproduce bit for bit.
    const int64_t m = c.dim(0);
    const int64_t n = c.dim(1);
    float *pc = c.data();
    for (const GemmEpilogue::Stage &st : epi->stages) {
        switch (st.kind) {
          case GemmEpilogue::Stage::Kind::kBias:
            for (int64_t i = 0; i < m; ++i)
                for (int64_t j = 0; j < n; ++j)
                    pc[i * n + j] += st.data[j];
            break;
          case GemmEpilogue::Stage::Kind::kGelu:
            for (int64_t i = 0; i < m * n; ++i)
                pc[i] = geluScalar(pc[i]);
            break;
          case GemmEpilogue::Stage::Kind::kResidual:
            for (int64_t i = 0; i < m * n; ++i)
                pc[i] += st.data[i];
            break;
          case GemmEpilogue::Stage::Kind::kQuant:
            if (st.health != nullptr) {
                st.quant->quantizeInPlace(
                    pc, static_cast<size_t>(m * n), *st.health);
            } else {
                st.quant->quantizeInPlace(pc,
                                          static_cast<size_t>(m * n));
            }
            break;
        }
    }
}

} // namespace qt8
