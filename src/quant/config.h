/**
 * @file
 * Quantization policy for Transformer inference and fine-tuning
 * (paper sections 4 and 5): which operation classes have their inputs
 * quantized, the incremental operation-fusion schedule that skips
 * quantization between a GEMM and a fused element-wise consumer, the
 * forward/backward data types, per-tensor gradient scaling, and the
 * approximate-softmax mode.
 */
#ifndef QT8_QUANT_CONFIG_H
#define QT8_QUANT_CONFIG_H

#include <memory>
#include <string>

#include "numerics/posit_ops.h"
#include "numerics/quantizer.h"
#include "tensor/tensor.h"

namespace qt8 {

/// Operation classes whose input quantization the paper studies
/// (Figure 5 / Table 1).
enum class OpClass {
    kGemm,        ///< Matrix multiplication inputs (weights+activations).
    kAttnScaling, ///< Input to the 1/sqrt(d) attention scaling.
    kActivation,  ///< Inputs to softmax and GeLU.
    kLayerNorm,   ///< Inputs to layer normalization.
    kResidual,    ///< Inputs to residual additions.
};

/// Incremental fusion schedule (Table 2 columns). Each level fuses one
/// more op class with its producing GEMM, ordered by accuracy impact:
/// attention scaling > activation > layernorm > residual.
enum class FusionLevel {
    kNone = 0,
    kAttnScaling = 1,
    kActivation = 2,
    kLayerNorm = 3,
    kResidual = 4,
};

const char *toString(FusionLevel level);
const char *toString(OpClass c);

/// How softmax is evaluated (Table 4 rows).
enum class SoftmaxMode {
    kExact,       ///< Exact exp + division (then quantized).
    kApproxExp,   ///< Posit approximate exponential only.
    kApproxRecip, ///< Posit approximate reciprocal only.
    kApproxBoth,  ///< Both approximations ("posit softmax").
};

/**
 * Complete quantization configuration for a run.
 *
 * The paper's presets:
 *  - bf16(): everything carried in BFloat16 (the baseline).
 *  - posit8() / posit8_2(): Posit8 forward and backward.
 *  - fp8(): E4M3 forward, E5M2 backward (NVIDIA recipe).
 *  - fp32(): no quantization (reference).
 */
struct QuantConfig
{
    Quantizer fwd = Quantizer::identity(); ///< Forward-pass data type.
    Quantizer bwd = Quantizer::identity(); ///< Backward-pass data type.

    /// Carrier quantizer applied after every op in 8-bit modes,
    /// modelling the BFloat16 storage of the GPU methodology. Identity
    /// by default (FP32 carrier).
    Quantizer carrier = Quantizer::identity();

    FusionLevel fusion = FusionLevel::kNone;

    /// If false, non-GEMM op classes are never quantized even without
    /// fusion (used by the Table 1 ablation: GEMM + one class).
    bool quant_gemm = false;
    bool quant_attn_scaling = false;
    bool quant_activation = false;
    bool quant_layernorm = false;
    bool quant_residual = false;

    /// Per-tensor scaling with amax history on backward activations
    /// (section 5.1). Applied whenever the backward type is quantized.
    bool per_tensor_scaled_grads = true;

    /// Nonzero overrides the backward format's amax scaling target
    /// (section 5.1 ablation: 64 vs maxpos for Posit8).
    double scaling_target_override = 0.0;

    /// Softmax evaluation mode; approximations only make sense with a
    /// posit forward type.
    SoftmaxMode softmax = SoftmaxMode::kExact;
    /// Posit format used for approximate softmax (posit(8,1) normally).
    const PositSpec *softmax_spec = &posit8_1();
    ApproxExpConfig approx_exp;

    /// Skip quantization of the final task head's inputs (the artifact's
    /// "--op_fusion classifier/qa_outputs" stability option).
    bool fuse_head = false;

    /// Store Linear weights as true packed 8-bit codes and run GEMMs
    /// through the fused gemmQuantized kernel (inference-only; requires
    /// a packable grid forward format — posit8 variants, E4M3, E5M2).
    /// Bit-identical outputs to the fake-quantized fp32 path; ~4x
    /// smaller resident weight bytes. Layers the packed path cannot
    /// serve (LoRA, fused heads, int8) fall back transparently.
    bool weights_packed = false;

    /// Store KV-cache panels as true packed 8-bit codes and run the
    /// decode-step attention GEMVs through code-decoding kernels
    /// (tensor/packed.h). Same eligibility and identity story as
    /// weights_packed: requires a packable grid forward format with a
    /// spare code for NaN (<=255 grid values); K/V rows land exactly on
    /// the fwd grid at the kGemm quant point, so pack -> decode
    /// reproduces the fp32 cache bit for bit. Dynamic-scale int8 and
    /// identity formats fall back to the fp32 cache transparently.
    bool kv_packed = false;

    /// The grid format packed KV caches store codes for, or nullptr
    /// when kv_packed is off or the forward format is not eligible
    /// (identity, bf16, int8). Callers pass this straight into
    /// KVCache/KVSlots::reset.
    const Quantizer *kvPackedFormat() const;

    std::string name = "fp32";

    // --- Presets -----------------------------------------------------

    static QuantConfig fp32();
    static QuantConfig bf16();
    /// 8-bit preset with all op classes quantized, given fwd/bwd types.
    static QuantConfig eightBit(const std::string &name,
                                const Quantizer &fwd, const Quantizer &bwd);
    static QuantConfig posit8();
    static QuantConfig posit8es2();
    static QuantConfig fp8();
    /// posit8 with the full approximate softmax enabled.
    static QuantConfig posit8Approx();
    /// Int8 inference baseline with dynamic per-tensor scaling only.
    static QuantConfig int8PerTensor();
    /// Int8 inference baseline with per-channel weight scaling (the
    /// conventional int8 deployment recipe the paper argues against).
    static QuantConfig int8PerChannel();

    /// Int8 weights use per-output-channel scales.
    bool int8_per_channel_weights = false;

    /// Returns a copy with the given fusion level.
    QuantConfig withFusion(FusionLevel level) const;

    // --- Queries used by the model layer ------------------------------

    /// Is class @p c quantization-active in the forward pass (enabled
    /// and not removed by the fusion schedule)?
    bool activeFwd(OpClass c) const;

    /// True when any 8-bit quantization is configured.
    bool anyQuant() const { return !fwd.isIdentity(); }
};

/**
 * Per-run mutable state accompanying a QuantConfig: the per-tensor amax
 * histories for gradient scaling, keyed by a caller-provided slot id.
 */
class QuantSession
{
  public:
    explicit QuantSession(QuantConfig cfg) : cfg_(std::move(cfg)) {}

    const QuantConfig &config() const { return cfg_; }
    QuantConfig &config() { return cfg_; }

    /// Quantize a forward tensor that is the input to op class @p c
    /// (no-op when the class is fused or disabled). Applies the carrier
    /// format afterwards.
    void quantFwd(OpClass c, Tensor &t);

    /// Quantize a weight tensor in the forward format.
    void quantWeight(Tensor &t);

    /// Quantize a backward (gradient) tensor flowing into op class
    /// @p c, with per-tensor scaling when configured. @p slot
    /// identifies the tensor across steps for amax history.
    void quantBwd(OpClass c, Tensor &t, int slot);

    /// Apply only the carrier format (BF16 storage emulation).
    void carrier(Tensor &t);

    /// Allocate a unique gradient-scaling slot id.
    int allocSlot() { return next_slot_++; }

    /// Observation hooks for the distribution studies (Figures 6, 10):
    /// called with the tensor *before* quantization. Taps assume
    /// ordered, single-threaded callbacks — installing fwd_tap disables
    /// the batched (batch x head) parallel attention path.
    std::function<void(OpClass, const Tensor &)> fwd_tap;
    std::function<void(OpClass, const Tensor &)> bwd_tap;

  private:
    TensorScaler &scalerFor(int slot);

    QuantConfig cfg_;
    int next_slot_ = 0;
    std::vector<std::unique_ptr<TensorScaler>> scalers_;
};

} // namespace qt8

#endif // QT8_QUANT_CONFIG_H
