#include "quant/config.h"

#include "util/trace.h"

namespace qt8 {

namespace {

/// Quantize one tensor through @p q, accumulating numeric-health
/// counters into the tracer's per-point table when a trace is being
/// collected (single branch + plain quantize otherwise).
void
quantizeTracked(const Quantizer &q, const char *stage, OpClass c,
                Tensor &t)
{
    if (trace::collecting()) {
        QuantHealth h;
        q.quantizeInPlace(t.data(), static_cast<size_t>(t.numel()), h);
        trace::healthAccumulate(std::string(stage) + "/" + toString(c),
                                h);
    } else {
        q.quantizeInPlace(t.data(), static_cast<size_t>(t.numel()));
    }
}

void
quantizeTracked(const Quantizer &q, const char *point, Tensor &t)
{
    if (trace::collecting()) {
        QuantHealth h;
        q.quantizeInPlace(t.data(), static_cast<size_t>(t.numel()), h);
        trace::healthAccumulate(point, h);
    } else {
        q.quantizeInPlace(t.data(), static_cast<size_t>(t.numel()));
    }
}

} // namespace

const char *
toString(FusionLevel level)
{
    switch (level) {
      case FusionLevel::kNone:
        return "no-fusion";
      case FusionLevel::kAttnScaling:
        return "+attn-scaling";
      case FusionLevel::kActivation:
        return "+activation";
      case FusionLevel::kLayerNorm:
        return "+layernorm";
      case FusionLevel::kResidual:
        return "+residual";
    }
    return "?";
}

const char *
toString(OpClass c)
{
    switch (c) {
      case OpClass::kGemm:
        return "gemm";
      case OpClass::kAttnScaling:
        return "attn-scaling";
      case OpClass::kActivation:
        return "activation";
      case OpClass::kLayerNorm:
        return "layernorm";
      case OpClass::kResidual:
        return "residual";
    }
    return "?";
}

QuantConfig
QuantConfig::fp32()
{
    QuantConfig cfg;
    cfg.name = "fp32";
    return cfg;
}

QuantConfig
QuantConfig::bf16()
{
    QuantConfig cfg;
    cfg.name = "bf16";
    // Everything is carried in BFloat16; no 8-bit op quantization.
    cfg.carrier = Quantizer::bf16();
    return cfg;
}

QuantConfig
QuantConfig::eightBit(const std::string &name, const Quantizer &fwd,
                      const Quantizer &bwd)
{
    QuantConfig cfg;
    cfg.name = name;
    cfg.fwd = fwd;
    cfg.bwd = bwd;
    cfg.carrier = Quantizer::bf16();
    cfg.quant_gemm = true;
    cfg.quant_attn_scaling = true;
    cfg.quant_activation = true;
    cfg.quant_layernorm = true;
    cfg.quant_residual = true;
    return cfg;
}

QuantConfig
QuantConfig::posit8()
{
    return eightBit("posit8", Quantizer::byName("posit8"),
                    Quantizer::byName("posit8"));
}

QuantConfig
QuantConfig::posit8es2()
{
    QuantConfig cfg = eightBit("posit(8,2)", Quantizer::byName("posit(8,2)"),
                               Quantizer::byName("posit(8,2)"));
    cfg.softmax_spec = &posit8_2();
    return cfg;
}

QuantConfig
QuantConfig::fp8()
{
    // NVIDIA recipe: E4M3 forward, E5M2 backward.
    return eightBit("fp8", Quantizer::byName("e4m3"),
                    Quantizer::byName("e5m2"));
}

QuantConfig
QuantConfig::posit8Approx()
{
    QuantConfig cfg = posit8();
    cfg.name = "posit8-approx";
    cfg.softmax = SoftmaxMode::kApproxBoth;
    return cfg;
}

QuantConfig
QuantConfig::int8PerTensor()
{
    // Inference-only baseline: int8 forward, no gradient quantization.
    QuantConfig cfg = eightBit("int8-per-tensor", Quantizer::int8(),
                               Quantizer::identity());
    return cfg;
}

QuantConfig
QuantConfig::int8PerChannel()
{
    QuantConfig cfg = int8PerTensor();
    cfg.name = "int8-per-channel";
    cfg.int8_per_channel_weights = true;
    return cfg;
}

const Quantizer *
QuantConfig::kvPackedFormat() const
{
    // The cache stores exactly what quantFwd(kGemm) produced, so the
    // rows only sit on the fwd grid when that point is active. One code
    // must stay free for NaN (a poisoned row still has to round-trip as
    // non-finite), hence <= 255 grid values rather than 256.
    if (!kv_packed || !quant_gemm || fwd.isIdentity())
        return nullptr;
    const size_t n = fwd.gridValues().size();
    if (n == 0 || n > 255)
        return nullptr;
    return &fwd;
}

QuantConfig
QuantConfig::withFusion(FusionLevel level) const
{
    QuantConfig cfg = *this;
    cfg.fusion = level;
    return cfg;
}

bool
QuantConfig::activeFwd(OpClass c) const
{
    switch (c) {
      case OpClass::kGemm:
        return quant_gemm;
      case OpClass::kAttnScaling:
        return quant_attn_scaling &&
               fusion < FusionLevel::kAttnScaling;
      case OpClass::kActivation:
        return quant_activation && fusion < FusionLevel::kActivation;
      case OpClass::kLayerNorm:
        return quant_layernorm && fusion < FusionLevel::kLayerNorm;
      case OpClass::kResidual:
        return quant_residual && fusion < FusionLevel::kResidual;
    }
    return false;
}

void
QuantSession::quantFwd(OpClass c, Tensor &t)
{
    if (fwd_tap)
        fwd_tap(c, t);
    if (cfg_.activeFwd(c) && !cfg_.fwd.isIdentity())
        quantizeTracked(cfg_.fwd, "fwd", c, t);
    else
        carrier(t);
}

void
QuantSession::quantWeight(Tensor &t)
{
    if (cfg_.quant_gemm && !cfg_.fwd.isIdentity()) {
        if (cfg_.int8_per_channel_weights && t.rank() == 2) {
            // Per-channel scales are row-local; health stats are not
            // defined across them, so this path is untracked.
            cfg_.fwd.quantizeRowsInPlace(
                t.data(), static_cast<size_t>(t.dim(0)),
                static_cast<size_t>(t.dim(1)));
        } else {
            quantizeTracked(cfg_.fwd, "weight", t);
        }
    } else {
        carrier(t);
    }
}

void
QuantSession::quantBwd(OpClass c, Tensor &t, int slot)
{
    if (bwd_tap)
        bwd_tap(c, t);
    // The backward pass mirrors the forward fusion schedule: gradients
    // flowing into a fused op stay in the carrier format.
    if (!cfg_.activeFwd(c) || cfg_.bwd.isIdentity()) {
        carrier(t);
        return;
    }
    if (cfg_.per_tensor_scaled_grads) {
        // Scaled grads quantize on a shifted grid; per-point health in
        // unscaled units would be misleading, so leave untracked.
        scalerFor(slot).quantizeInPlace(t.data(),
                                        static_cast<size_t>(t.numel()));
    } else {
        quantizeTracked(cfg_.bwd, "bwd", c, t);
    }
}

void
QuantSession::carrier(Tensor &t)
{
    if (!cfg_.carrier.isIdentity())
        quantizeTracked(cfg_.carrier, "carrier", t);
}

TensorScaler &
QuantSession::scalerFor(int slot)
{
    while (static_cast<int>(scalers_.size()) <= slot)
        scalers_.push_back(nullptr);
    auto &s = scalers_[static_cast<size_t>(slot)];
    if (!s) {
        s = std::make_unique<TensorScaler>(
            cfg_.bwd, 16, cfg_.scaling_target_override);
    }
    return *s;
}

} // namespace qt8
