#include "numerics/decimal_accuracy.h"

#include <cmath>

namespace qt8 {

double
decimalAccuracy(const Quantizer &q, double x, double cap)
{
    if (x <= 0.0)
        return 0.0;
    const double qx = q.quantize(static_cast<float>(x));
    if (qx <= 0.0)
        return 0.0; // underflowed to zero: no significant digits
    const double err = std::fabs(std::log10(qx / x));
    if (err == 0.0)
        return cap;
    return std::min(cap, -std::log10(err));
}

std::vector<DecimalAccuracyPoint>
decimalAccuracySweep(const Quantizer &q, double log2_lo, double log2_hi,
                     double step, int samples_per_step)
{
    std::vector<DecimalAccuracyPoint> points;
    for (double l = log2_lo; l <= log2_hi + 1e-9; l += step) {
        double worst = 1e9;
        for (int i = 0; i < samples_per_step; ++i) {
            const double frac =
                (i + 0.5) / static_cast<double>(samples_per_step);
            const double x = std::exp2(l + frac * step);
            worst = std::min(worst, decimalAccuracy(q, x));
        }
        points.push_back({l, worst});
    }
    return points;
}

} // namespace qt8
