/**
 * @file
 * Bit-level utilities for IEEE-754 floats and the BFloat16 storage format.
 *
 * BFloat16 is the baseline data type of the paper ("BF16"): a truncated
 * IEEE-754 binary32 with 8 exponent bits and 7 mantissa bits. We implement
 * round-to-nearest-even conversion from binary32, which is what GPU
 * BF16 stores use.
 */
#ifndef QT8_NUMERICS_FLOAT_BITS_H
#define QT8_NUMERICS_FLOAT_BITS_H

#include <cstdint>
#include <cstring>

namespace qt8 {

/// Reinterpret a float as its raw IEEE-754 bits.
inline uint32_t
bits_from_float(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

/// Reinterpret raw IEEE-754 bits as a float.
inline float
float_from_bits(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

/**
 * BFloat16: 1 sign, 8 exponent, 7 mantissa bits.
 *
 * The paper's baseline format and the carrier format of its GPU
 * fake-quantization methodology (values are stored back into BFloat16
 * between operations).
 */
class Bfloat16
{
  public:
    Bfloat16() = default;

    /// Construct from raw 16-bit pattern.
    static Bfloat16 fromBits(uint16_t bits);

    /// Convert from binary32 with round-to-nearest-even.
    static Bfloat16 fromFloat(float f);

    /// Widen back to binary32 (exact).
    float toFloat() const;

    uint16_t bits() const { return bits_; }

    /// Round-trip a float through BFloat16 (the fake-quantize primitive).
    static float quantize(float f) { return fromFloat(f).toFloat(); }

    /// Largest finite BFloat16 value.
    static constexpr float kMax = 3.38953139e38f;

  private:
    uint16_t bits_ = 0;
};

} // namespace qt8

#endif // QT8_NUMERICS_FLOAT_BITS_H
