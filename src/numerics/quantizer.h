/**
 * @file
 * Fake-quantization engine: rounds float tensors onto the value grid of
 * an 8-bit (or 16-bit) format, exactly reproducing each format's
 * round-to-nearest-even + saturation semantics, while carrying values in
 * float. This mirrors the paper's GPU methodology (section 6): "clipping
 * tensor values to the Posit8 or FP8 representable range before and
 * after each operation; storing the value back into BFloat16".
 *
 * Also provides per-tensor scaling (section 5.1): a power-of-two scale
 * factor per tensor ("its own exponent bias") chosen so the tensor's
 * amax lands on a format-specific target — the max finite value for FP8,
 * but 64 for Posit8, because posit's tapered precision makes values near
 * maxpos too coarse (the paper found amax->64 best).
 */
#ifndef QT8_NUMERICS_QUANTIZER_H
#define QT8_NUMERICS_QUANTIZER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "numerics/minifloat.h"
#include "numerics/posit.h"

namespace qt8 {

/**
 * Per-quant-point numeric-health counters, accumulated by the
 * health-aware Quantizer::quantizeInPlace overload and merged into the
 * tracer's global per-point table (util/trace.h). All counts are over
 * *input* elements:
 *
 *  - saturated: finite inputs whose magnitude exceeds the format's
 *    maxRepresentable() (they clamp to ±max on the grid);
 *  - underflow: nonzero inputs that round to exactly 0 (flushed below
 *    the format's smallest representable magnitude);
 *  - nonfinite: NaN/±inf inputs (inf additionally saturates; NaN maps
 *    to the format's NaR/NaN);
 *  - amax: largest finite input magnitude seen;
 *  - abs_err_sum: sum of |x - q(x)| over finite inputs (mean via
 *    meanAbsErr()) — the "mean |err| vs fp32 input" column.
 */
struct QuantHealth
{
    uint64_t count = 0;      ///< elements quantized
    uint64_t saturated = 0;  ///< finite |x| > maxRepresentable()
    uint64_t underflow = 0;  ///< x != 0 rounded to exactly 0
    uint64_t nonfinite = 0;  ///< NaN or ±inf inputs
    double amax = 0.0;       ///< max finite |x| observed
    double abs_err_sum = 0.0; ///< sum |x - q(x)| over finite inputs

    void
    merge(const QuantHealth &o)
    {
        count += o.count;
        saturated += o.saturated;
        underflow += o.underflow;
        nonfinite += o.nonfinite;
        if (o.amax > amax)
            amax = o.amax;
        abs_err_sum += o.abs_err_sum;
    }

    /// Mean |x - q(x)| over finite inputs (0 when nothing finite seen).
    double
    meanAbsErr() const
    {
        const uint64_t finite = count - nonfinite;
        return finite == 0 ? 0.0
                           : abs_err_sum / static_cast<double>(finite);
    }
};

/**
 * Rounds floats to a format's representable-value grid.
 *
 * Copyable value type; cheap to pass around by const reference. The
 * identity quantizer passes values through (used for FP32 baselines);
 * the bf16 quantizer uses the algorithmic BFloat16 path.
 *
 * Grid formats round through a direct-lookup fast path: floats are
 * bucketed by their top 16 bits (sign + exponent + upper mantissa) into
 * a 65,536-entry table holding the grid-index range each bucket can map
 * to. Most buckets resolve to a single index; the few that straddle a
 * rounding threshold finish with a lower_bound over that bucket's
 * (tiny) threshold window, so the result is bit-exact with the full
 * binary search (kept as quantizeBySearch for verification). This
 * mirrors the paper's hardware, which decodes 8-bit codes with small
 * LUT-like units rather than comparator chains (section 4).
 */
class Quantizer
{
  public:
    /// No-op quantizer (FP32 / "no quantization").
    static Quantizer identity();
    /// BFloat16 round-trip (the paper's baseline data type).
    static Quantizer bf16();
    /// Grid quantizer for a posit format.
    static Quantizer posit(const PositSpec &spec);
    /// Grid quantizer for a minifloat format (E4M3/E5M2/...).
    static Quantizer minifloat(const MinifloatSpec &spec);
    /**
     * Symmetric int8 with *dynamic per-tensor scaling*: each
     * quantizeInPlace call computes scale = amax/127 over the buffer
     * and rounds to the integer grid. The paper's baseline comparator
     * (section 1): unlike Posit8/FP8, int8 cannot work without these
     * scaling factors, and often needs per-channel scaling
     * (quantizeRowsInPlace) for weights.
     */
    static Quantizer int8();

    /// Look up one of the paper's format names: "bf16", "posit8",
    /// "posit(8,1)", "posit(8,2)", "e4m3", "e5m2", "fp32"/"none".
    /// Throws std::invalid_argument for unknown names.
    static Quantizer byName(const std::string &name);

    /// Round one value to the grid (LUT fast path for grid formats).
    float quantize(float x) const;

    /**
     * Reference rounding via binary search over the full threshold
     * list (the pre-LUT implementation). Bit-exact with quantize();
     * kept for the exhaustive equivalence tests and benchmarks.
     */
    float quantizeBySearch(float x) const;

    /**
     * Grid formats only: the index into gridValues() that quantize(x)
     * selects, i.e. gridValues()[gridIndex(x)] == quantize(x) bit for
     * bit for every non-NaN float. This is the 8-bit *code* a packed
     * tensor stores; PackedTensor decodes it back through the
     * gridValues() table. Throws std::invalid_argument for NaN inputs
     * (no grid code represents NaN) and for non-grid quantizers.
     */
    uint16_t gridIndex(float x) const;

    /// Round a buffer in place (for int8: dynamic per-tensor scale).
    void quantizeInPlace(float *p, size_t n) const;

    /**
     * Health-aware variant: quantize the buffer AND accumulate
     * per-element numeric-health counters into @p health (merged, not
     * reset — callers pass a fresh struct per tensor or accumulate).
     * Bit-identical results to the plain overload; runs a serial fused
     * pass, so only the tracer's health path (off by default) pays for
     * the statistics.
     */
    void quantizeInPlace(float *p, size_t n, QuantHealth &health) const;

    /// Round a 2-D row-major buffer with *per-row* scaling for int8
    /// (per-channel weight quantization); identical to quantizeInPlace
    /// for every other kind.
    void quantizeRowsInPlace(float *p, size_t rows, size_t cols) const;

    /// Human-readable format name.
    const std::string &name() const { return name_; }

    /// True for the identity quantizer.
    bool isIdentity() const { return kind_ == Kind::kIdentity; }

    /// Largest representable finite magnitude (+inf for identity).
    double maxRepresentable() const { return max_rep_; }

    /// The amax target for per-tensor scaling in this format.
    double scalingTargetAmax() const { return scaling_target_; }

    /// Sorted representable values of a grid format (empty otherwise).
    const std::vector<float> &gridValues() const { return values_; }

    /// Rounding thresholds of a grid format: gridThresholds()[i] is the
    /// largest float rounding to gridValues()[i] (empty otherwise).
    const std::vector<float> &gridThresholds() const { return thresholds_; }

  private:
    enum class Kind { kIdentity, kBfloat16, kGrid, kInt8 };

    Quantizer() = default;

    /**
     * Build the value grid and per-interval rounding thresholds. The
     * thresholds are derived from the reference codec itself so the fast
     * table path is exactly equivalent to decode(encode(x)) — including
     * tie-to-even-code and sub-minpos policy behavior.
     */
    void buildGridFromCodec(
        const std::vector<double> &values,
        const std::function<double(double)> &ref_quantize);

    /// Fill lut_lo_/lut_hi_ from the thresholds (called at the end of
    /// buildGridFromCodec).
    void buildLut();

    Kind kind_ = Kind::kIdentity;
    std::string name_ = "fp32";
    double max_rep_ = 0.0;
    double scaling_target_ = 0.0;

    /// Sorted representable values.
    std::vector<float> values_;
    /// thresholds_[i] = largest float that rounds to values_[i]
    /// (size values_.size() - 1; the last value has no upper threshold).
    std::vector<float> thresholds_;

    /// One bucket per top-16-bit float prefix.
    static constexpr uint32_t kLutBuckets = 1u << 16;
    /// Per-bucket [lo, hi] grid-index range: every non-NaN float whose
    /// top 16 bits select the bucket rounds to a value in that range.
    /// lo == hi for buckets that resolve directly (the vast majority).
    std::vector<uint16_t> lut_lo_;
    std::vector<uint16_t> lut_hi_;
};

/**
 * Sliding window of historical per-tensor amax values used to predict
 * the scale for the current step (section 5.1, following NVIDIA's FP8
 * recipe: keep a history of amaxes, use the max of the window).
 */
class AmaxHistory
{
  public:
    explicit AmaxHistory(int window = 16) : window_(window) {}

    /// Record the amax observed this step.
    void push(double amax);

    /// Predicted amax for the next step: max over the window, or the
    /// fallback if no history yet.
    double predict(double fallback = 1.0) const;

    bool empty() const { return history_.empty(); }

  private:
    int window_;
    /// Fixed-capacity ring: grows to window_ entries, then next_ wraps
    /// and overwrites the oldest (O(1) push; predict scans the window).
    std::vector<double> history_;
    size_t next_ = 0;
};

/**
 * Per-tensor power-of-two scaling wrapped around a Quantizer:
 * q(x) = quantize(x * s) / s with s = 2^round(log2(target / amax)).
 */
class TensorScaler
{
  public:
    /**
     * @param target_override If nonzero, overrides the format's default
     * scaling target (used by the amax-target ablation: the paper found
     * 64 best for Posit8 versus its maxpos of 4096, section 5.1).
     */
    TensorScaler(const Quantizer &q, int history_window = 16,
                 double target_override = 0.0)
        : quantizer_(&q), history_(history_window),
          target_override_(target_override)
    {}

    /**
     * Quantize a buffer in place with a predicted per-tensor scale; the
     * buffer's actual amax is recorded into the history afterwards.
     */
    void quantizeInPlace(float *p, size_t n);

    /// Power-of-two scale that maps amax onto the format target.
    static double scaleFor(double amax, double target);

    const AmaxHistory &history() const { return history_; }

  private:
    const Quantizer *quantizer_;
    AmaxHistory history_;
    double target_override_ = 0.0;
};

} // namespace qt8

#endif // QT8_NUMERICS_QUANTIZER_H
