/**
 * @file
 * Decimal accuracy metric (paper Figure 4): how many decimal digits a
 * format preserves when representing a value x,
 *
 *     acc(x) = -log10( | log10( q(x) / x ) | )
 *
 * where q(x) is x rounded to the format. Larger is better; exact
 * representation yields +infinity (we cap it for plotting).
 */
#ifndef QT8_NUMERICS_DECIMAL_ACCURACY_H
#define QT8_NUMERICS_DECIMAL_ACCURACY_H

#include <vector>

#include "numerics/quantizer.h"

namespace qt8 {

/// Decimal accuracy of a single value (capped at @p cap for exact hits).
double decimalAccuracy(const Quantizer &q, double x, double cap = 8.0);

/// One sample of the Figure 4 sweep.
struct DecimalAccuracyPoint
{
    double log2_x;  ///< Position on the magnitude axis.
    double accuracy;///< Worst-case decimal accuracy in that binade slice.
};

/**
 * Sweep decimal accuracy over magnitudes 2^lo .. 2^hi, reporting the
 * *worst case* accuracy over values sampled within each step (this is
 * the envelope the paper plots).
 */
std::vector<DecimalAccuracyPoint>
decimalAccuracySweep(const Quantizer &q, double log2_lo, double log2_hi,
                     double step = 0.25, int samples_per_step = 64);

} // namespace qt8

#endif // QT8_NUMERICS_DECIMAL_ACCURACY_H
