/**
 * @file
 * Posit (type III unum) arithmetic, per Gustafson & Yonemoto and the
 * posit standard, parameterized on width and exponent-field size.
 *
 * A posit(N, es) value is
 *
 *     x = (-1)^s * 1.f * (2^(2^es))^k * 2^e                  (paper Eq. 1)
 *
 * where k is the regime (a variable-length run-length-encoded field), e
 * is an up-to-es-bit exponent, and f the remaining fraction bits.
 * Negative values are encoded as the two's complement of the positive
 * pattern; there is a single zero (code 0) and a single NaR code
 * (1 followed by zeros).
 *
 * The paper uses posit(8,1) ("Posit8"), posit(8,2), posit(8,0) (for the
 * sigmoid approximation), and posit(16,1) for the hardware study.
 *
 * Encoding implements round-to-nearest-even with posit saturation
 * semantics (no overflow to NaR: magnitudes beyond maxpos clamp to
 * maxpos). Handling of magnitudes below minpos is policy-selectable to
 * capture the paper's section 3.4 deviation from the standard:
 *
 *  - kPositStandard: nonzero magnitudes never round to zero; anything in
 *    (0, minpos] becomes minpos.
 *  - kPaperRoundToEven: round-to-nearest-even continues below minpos, so
 *    magnitudes below minpos/2 flush to zero (gradients smaller than
 *    2^-13 for posit(8,1)); the tie at exactly minpos/2 also rounds to
 *    the even code, which is zero.
 */
#ifndef QT8_NUMERICS_POSIT_H
#define QT8_NUMERICS_POSIT_H

#include <cstdint>
#include <string>
#include <vector>

namespace qt8 {

/// How to round magnitudes below the smallest positive posit.
enum class SubMinposPolicy {
    kPositStandard,   ///< Round up to minpos (never underflow to 0).
    kPaperRoundToEven ///< RNE below minpos: < minpos/2 flushes to 0.
};

/// Runtime-parameterized posit format descriptor and codec.
class PositSpec
{
  public:
    /**
     * @param nbits Total width N (2..32 supported; the paper uses 8/16).
     * @param es Exponent field size (0..3).
     * @param policy Sub-minpos rounding policy (see above).
     */
    PositSpec(int nbits, int es,
              SubMinposPolicy policy = SubMinposPolicy::kPaperRoundToEven);

    int nbits() const { return nbits_; }
    int es() const { return es_; }
    SubMinposPolicy policy() const { return policy_; }
    std::string name() const;

    /// Number of code words (2^N).
    uint32_t numCodes() const { return 1u << nbits_; }

    /// The NaR (not-a-real) code: 1 followed by zeros.
    uint32_t narCode() const { return 1u << (nbits_ - 1); }

    /// Code of the largest positive value (0111...1).
    uint32_t maxposCode() const { return narCode() - 1; }

    /// Largest representable magnitude: (2^(2^es))^(N-2).
    double maxpos() const;

    /// Smallest positive magnitude: (2^(2^es))^-(N-2).
    double minpos() const;

    /// Decode a code word to its exact value (NaN for NaR).
    double decode(uint32_t code) const;

    /// Encode a value with RNE + saturation (see class comment).
    uint32_t encode(double x) const;

    /// Round-trip a value through the format (fake-quantize primitive).
    double quantize(double x) const { return decode(encode(x)); }

    /// All representable finite values, ascending (excludes NaR).
    std::vector<double> allValues() const;

    // --- Arithmetic (decode -> exact double op -> encode). For 8/16-bit
    // posits double carries the exact result of a single mul/add, so
    // these match a hardware implementation with a wide internal datapath
    // and a single final rounding.

    uint32_t add(uint32_t a, uint32_t b) const;
    uint32_t sub(uint32_t a, uint32_t b) const;
    uint32_t mul(uint32_t a, uint32_t b) const;
    uint32_t div(uint32_t a, uint32_t b) const;
    uint32_t neg(uint32_t a) const;

    /**
     * Fused dot product (quire-style): products and the accumulation are
     * carried exactly in double and rounded once at the end (paper
     * section 3.2, "fused operations").
     */
    uint32_t fusedDot(const uint32_t *a, const uint32_t *b, int n) const;

  private:
    int nbits_;
    int es_;
    SubMinposPolicy policy_;
    uint32_t mask_;  ///< Low nbits set.
};

/// Shared immutable instances of the formats the paper uses.
const PositSpec &posit8_0();  ///< posit(8,0), for the sigmoid trick.
const PositSpec &posit8_1();  ///< posit(8,1), the paper's "Posit8".
const PositSpec &posit8_2();  ///< posit(8,2).
const PositSpec &posit16_1(); ///< posit(16,1).

} // namespace qt8

#endif // QT8_NUMERICS_POSIT_H
