#include "numerics/minifloat.h"

#include <cmath>
#include <limits>

namespace qt8 {
namespace {

/// Encode a non-negative finite magnitude with round-to-nearest-even.
uint32_t
encodeMagnitude(const MinifloatSpec &spec, double a)
{
    if (a == 0.0)
        return 0;

    int e_unb;
    std::frexp(a, &e_unb);     // a = f * 2^e_unb, f in [0.5, 1)
    const int e = e_unb - 1;   // a = m * 2^e, m in [1, 2)

    const int emin = 1 - spec.bias;
    uint32_t exp_field;
    double scaled;
    if (e < emin) {
        // Subnormal range: quantize in units of 2^(emin - man_bits).
        exp_field = 0;
        scaled = std::ldexp(a, -(emin - spec.man_bits));
    } else {
        exp_field = static_cast<uint32_t>(e + spec.bias);
        scaled = std::ldexp(a, spec.man_bits - e); // in [2^man, 2^(man+1))
    }

    const double r = std::nearbyint(scaled); // default FE_TONEAREST = RNE
    uint32_t man;
    if (exp_field == 0) {
        if (r >= std::ldexp(1.0, spec.man_bits)) {
            // Rounded up into the smallest normal.
            exp_field = 1;
            man = 0;
        } else {
            man = static_cast<uint32_t>(r);
        }
    } else {
        if (r >= std::ldexp(2.0, spec.man_bits)) {
            // Mantissa overflow: bump exponent, mantissa becomes zero.
            exp_field += 1;
            man = 0;
        } else {
            man = static_cast<uint32_t>(r) - (1u << spec.man_bits);
        }
    }

    uint32_t code = (exp_field << spec.man_bits) | man;

    // Saturate anything that landed on/above the Inf/NaN region.
    const uint32_t exp_mask = (1u << spec.exp_bits) - 1;
    const uint32_t max_code = spec.flavor == MinifloatFlavor::kIeee
        ? ((exp_mask - 1) << spec.man_bits) | ((1u << spec.man_bits) - 1)
        : (exp_mask << spec.man_bits) | ((1u << spec.man_bits) - 2);
    if (code > max_code)
        code = max_code;
    return code;
}

} // namespace

double
MinifloatSpec::maxFinite() const
{
    const int emax_field = (1 << exp_bits) - 1;
    if (flavor == MinifloatFlavor::kIeee) {
        // Top exponent reserved: max finite lives in binade emax_field-1.
        const int e = emax_field - 1 - bias;
        const double frac = 2.0 - std::ldexp(1.0, -man_bits);
        return std::ldexp(frac, e);
    }
    // FiniteNoInf: top binade is finite except the all-ones mantissa (NaN).
    const int e = emax_field - bias;
    const double frac = 2.0 - std::ldexp(2.0, -man_bits);
    return std::ldexp(frac, e);
}

double
MinifloatSpec::minNormal() const
{
    return std::ldexp(1.0, 1 - bias);
}

double
MinifloatSpec::minSubnormal() const
{
    return std::ldexp(1.0, 1 - bias - man_bits);
}

bool
MinifloatSpec::isNan(uint32_t code) const
{
    const uint32_t exp_mask = (1u << exp_bits) - 1;
    const uint32_t man_mask = (1u << man_bits) - 1;
    const uint32_t e = (code >> man_bits) & exp_mask;
    const uint32_t m = code & man_mask;
    if (flavor == MinifloatFlavor::kIeee)
        return e == exp_mask && m != 0;
    return e == exp_mask && m == man_mask;
}

bool
MinifloatSpec::isInf(uint32_t code) const
{
    if (flavor != MinifloatFlavor::kIeee)
        return false;
    const uint32_t exp_mask = (1u << exp_bits) - 1;
    const uint32_t man_mask = (1u << man_bits) - 1;
    const uint32_t e = (code >> man_bits) & exp_mask;
    const uint32_t m = code & man_mask;
    return e == exp_mask && m == 0;
}

double
MinifloatSpec::decode(uint32_t code) const
{
    const uint32_t exp_mask = (1u << exp_bits) - 1;
    const uint32_t man_mask = (1u << man_bits) - 1;
    const int sign = (code >> (exp_bits + man_bits)) & 1;
    const uint32_t e = (code >> man_bits) & exp_mask;
    const uint32_t m = code & man_mask;

    if (isNan(code))
        return std::numeric_limits<double>::quiet_NaN();
    if (isInf(code)) {
        return sign ? -std::numeric_limits<double>::infinity()
                    : std::numeric_limits<double>::infinity();
    }

    double mag;
    if (e == 0) {
        // Subnormal: no implicit leading 1, exponent 1 - bias.
        mag = std::ldexp(static_cast<double>(m), 1 - bias - man_bits);
    } else {
        mag = std::ldexp(1.0 + std::ldexp(static_cast<double>(m), -man_bits),
                         static_cast<int>(e) - bias);
    }
    return sign ? -mag : mag;
}

uint32_t
MinifloatSpec::encode(double x) const
{
    const uint32_t sign_bit = 1u << (exp_bits + man_bits);
    if (std::isnan(x)) {
        // Canonical NaN code.
        if (flavor == MinifloatFlavor::kIeee)
            return (((1u << exp_bits) - 1) << man_bits) | 1u;
        return (((1u << exp_bits) - 1) << man_bits) | ((1u << man_bits) - 1);
    }

    const uint32_t s = std::signbit(x) ? sign_bit : 0;
    double a = std::fabs(x);
    // Saturate out-of-range magnitudes and infinities to the max finite
    // value, per FP8 DNN training practice.
    if (a > maxFinite())
        a = maxFinite();
    return s | encodeMagnitude(*this, a);
}

const MinifloatSpec &
e4m3()
{
    static const MinifloatSpec spec{
        "E4M3", 4, 3, 7, MinifloatFlavor::kFiniteNoInf};
    return spec;
}

const MinifloatSpec &
e5m2()
{
    static const MinifloatSpec spec{"E5M2", 5, 2, 15, MinifloatFlavor::kIeee};
    return spec;
}

const MinifloatSpec &
e5m3()
{
    static const MinifloatSpec spec{"E5M3", 5, 3, 15, MinifloatFlavor::kIeee};
    return spec;
}

const MinifloatSpec &
fp16()
{
    static const MinifloatSpec spec{"FP16", 5, 10, 15,
                                    MinifloatFlavor::kIeee};
    return spec;
}

const MinifloatSpec &
e5m4()
{
    static const MinifloatSpec spec{"E5M4", 5, 4, 15, MinifloatFlavor::kIeee};
    return spec;
}

} // namespace qt8
