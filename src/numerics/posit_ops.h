/**
 * @file
 * Approximate elementwise operations built from posit bit tricks
 * (paper sections 3.3, 4.1, 5.2):
 *
 *  - Sigmoid: for posit(N,0), S(x) is approximated by inverting the MSB
 *    of the code and logically shifting right by two. posit(8,1) inputs
 *    are converted to posit(8,0) first (the "conversion process" of
 *    section 3.3).
 *  - Reciprocal: XOR with the negated sign mask (invert all non-sign
 *    bits), valid for arbitrary es; a piece-wise linear approximation of
 *    1/x implementable with NOT gates.
 *  - Exponential: e^x = 1/S(-x) - 1 rebuilt from the two tricks, with the
 *    paper's two accuracy fixes: outputs are truncated to zero below a
 *    threshold theta (restoring attention masking), and the curve is
 *    shifted down by epsilon to hug the true exponential (Eq. 3).
 *
 * Plus the approximate softmax built from them, including the re-derived
 * backward pass for the piece-wise-linear reciprocal (Eq. 4, 5).
 */
#ifndef QT8_NUMERICS_POSIT_OPS_H
#define QT8_NUMERICS_POSIT_OPS_H

#include <cstdint>

#include "numerics/posit.h"

namespace qt8 {

/**
 * Fast sigmoid on a posit(N,0) code: invert the MSB, then logical shift
 * right by two (zeros shifted in).
 */
uint32_t approxSigmoidP0Code(const PositSpec &p0, uint32_t code);

/**
 * Approximate sigmoid for an arbitrary posit format: convert the operand
 * to posit(N,0), apply the bit trick, and convert back.
 */
uint32_t approxSigmoidCode(const PositSpec &spec, uint32_t code);

/**
 * Approximate reciprocal: invert all bits except the sign bit
 * (XOR with ~signmask). Works for any es; exact at powers of two up to
 * one ulp, piece-wise linear in between.
 */
uint32_t approxReciprocalCode(const PositSpec &spec, uint32_t code);

/// Thresholding/shifting parameters of the approximate exponential
/// (Eq. 3). The paper's best configuration is theta = -4 with
/// epsilon = 1.125 (Table 3, "Accuracy 2" column peaks at 89.6).
struct ApproxExpConfig
{
    double theta = -4.0;   ///< Inputs below this produce exactly 0.
    double epsilon = 1.125;///< Subtracted from 1/S(-x) (includes the -1).
    bool shift = true;     ///< Apply the epsilon shift (else subtract 1).
};

/**
 * Approximate exponential on a posit code (input expected <= 0 after
 * the softmax max-subtraction; the approximation is only valid there).
 * Negative results after shifting are clamped to zero.
 */
uint32_t approxExpCode(const PositSpec &spec, uint32_t code,
                       const ApproxExpConfig &cfg);

// --- Float-level wrappers (round the argument onto the posit grid
// first; used by the model/tensor layer).

double approxSigmoid(const PositSpec &spec, double x);
double approxReciprocal(const PositSpec &spec, double x);
double approxExp(const PositSpec &spec, double x, const ApproxExpConfig &cfg);

/**
 * Derivative model of the posit approximate reciprocal (Eq. 5):
 * f'(s) = -2^(-floor(log2 s)*2 - 1), the slope of the piece-wise linear
 * segment containing s.
 */
double approxReciprocalDerivative(double s);

/**
 * Softmax with posit-approximate exponential and/or reciprocal
 * (section 4.1), with the custom backward of section 5.2.
 *
 * Elementwise values are rounded onto the posit grid between steps; the
 * summation is fused (exact accumulation, single rounding), matching the
 * accelerator's vector unit with a high-precision accumulator.
 */
class ApproxPositSoftmax
{
  public:
    ApproxPositSoftmax(const PositSpec &spec, ApproxExpConfig cfg,
                       bool approx_exp = true, bool approx_recip = true)
        : spec_(&spec), cfg_(cfg), approx_exp_(approx_exp),
          approx_recip_(approx_recip)
    {}

    /**
     * Forward over one row of K logits.
     *
     * @param z Input logits (read-only).
     * @param out Softmax outputs (posit-grid values).
     * @param e_cache Per-element exponentials, needed by backward().
     * @param sum_cache Receives the (pre-reciprocal) exponential sum.
     */
    void forward(const float *z, float *out, int k, float *e_cache,
                 double *sum_cache) const;

    /**
     * Backward over one row using Eq. 4/5:
     * dL/dz_i = g_i*sigma_i + (sum_j g_j e_j) * f'(S) * e_i.
     * Falls back to the exact-quotient gradient when approx_recip is off.
     */
    void backward(const float *grad_out, const float *out,
                  const float *e_cache, double sum, float *grad_in,
                  int k) const;

    const PositSpec &spec() const { return *spec_; }
    const ApproxExpConfig &config() const { return cfg_; }

  private:
    const PositSpec *spec_;
    ApproxExpConfig cfg_;
    bool approx_exp_;
    bool approx_recip_;
};

} // namespace qt8

#endif // QT8_NUMERICS_POSIT_OPS_H
