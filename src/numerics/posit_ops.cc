#include "numerics/posit_ops.h"

#include <cmath>
#include <limits>

namespace qt8 {
namespace {

/// posit(N,0) companion format used by the sigmoid trick.
PositSpec
es0Companion(const PositSpec &spec)
{
    return PositSpec(spec.nbits(), 0, spec.policy());
}

} // namespace

uint32_t
approxSigmoidP0Code(const PositSpec &p0, uint32_t code)
{
    const uint32_t mask = p0.numCodes() - 1;
    const uint32_t msb = 1u << (p0.nbits() - 1);
    return ((code ^ msb) & mask) >> 2;
}

uint32_t
approxSigmoidCode(const PositSpec &spec, uint32_t code)
{
    if (spec.es() == 0)
        return approxSigmoidP0Code(spec, code);
    // Section 3.3: posit(8,1) operands must be converted to posit(8,0)
    // to use the approximation, and back afterwards.
    const PositSpec p0 = es0Companion(spec);
    const uint32_t c0 = p0.encode(spec.decode(code));
    const uint32_t r0 = approxSigmoidP0Code(p0, c0);
    return spec.encode(p0.decode(r0));
}

uint32_t
approxReciprocalCode(const PositSpec &spec, uint32_t code)
{
    const uint32_t mask = spec.numCodes() - 1;
    const uint32_t msb = 1u << (spec.nbits() - 1);
    // Invert every bit except the sign bit (NOT gates only).
    return (code ^ (mask & ~msb)) & mask;
}

uint32_t
approxExpCode(const PositSpec &spec, uint32_t code,
              const ApproxExpConfig &cfg)
{
    const double v = spec.decode(code);
    if (std::isnan(v))
        return spec.narCode();
    if (v < cfg.theta)
        return 0; // truncate to zero: restores attention masking

    const uint32_t negx = spec.neg(code);
    const uint32_t s = approxSigmoidCode(spec, negx);
    const uint32_t r = approxReciprocalCode(spec, s);
    const double eps = cfg.shift ? cfg.epsilon : 1.0;
    const uint32_t out = spec.sub(r, spec.encode(eps));
    if (spec.decode(out) < 0.0)
        return 0; // exp is non-negative; clamp shift overshoot
    return out;
}

double
approxSigmoid(const PositSpec &spec, double x)
{
    return spec.decode(approxSigmoidCode(spec, spec.encode(x)));
}

double
approxReciprocal(const PositSpec &spec, double x)
{
    return spec.decode(approxReciprocalCode(spec, spec.encode(x)));
}

double
approxExp(const PositSpec &spec, double x, const ApproxExpConfig &cfg)
{
    return spec.decode(approxExpCode(spec, spec.encode(x), cfg));
}

double
approxReciprocalDerivative(double s)
{
    if (!(s > 0.0) || !std::isfinite(s))
        return 0.0;
    const double fl = std::floor(std::log2(s));
    return -std::exp2(-fl * 2.0 - 1.0);
}

void
ApproxPositSoftmax::forward(const float *z, float *out, int k,
                            float *e_cache, double *sum_cache) const
{
    const PositSpec &spec = *spec_;

    double m = -std::numeric_limits<double>::infinity();
    for (int i = 0; i < k; ++i)
        m = std::max(m, static_cast<double>(z[i]));

    double sum = 0.0;
    for (int i = 0; i < k; ++i) {
        // t = z_i - max, computed as a posit subtraction in the vector
        // unit; inputs are already on the posit grid.
        const uint32_t tc = spec.sub(spec.encode(z[i]), spec.encode(m));
        double e;
        if (approx_exp_) {
            e = spec.decode(approxExpCode(spec, tc, cfg_));
        } else {
            e = spec.quantize(std::exp(spec.decode(tc)));
        }
        e_cache[i] = static_cast<float>(e);
        sum += e; // fused accumulation (section 3.2)
    }
    *sum_cache = spec.quantize(sum);

    double r;
    if (approx_recip_) {
        r = spec.decode(approxReciprocalCode(spec, spec.encode(sum)));
    } else {
        r = *sum_cache > 0.0 ? spec.quantize(1.0 / *sum_cache) : 0.0;
    }

    for (int i = 0; i < k; ++i) {
        out[i] = static_cast<float>(
            spec.quantize(static_cast<double>(e_cache[i]) * r));
    }
}

void
ApproxPositSoftmax::backward(const float *grad_out, const float *out,
                             const float *e_cache, double sum,
                             float *grad_in, int k) const
{
    if (approx_recip_) {
        // Eq. 4/5: dL/dz_i = g_i*sigma_i + (sum_j g_j e_j) * f'(S) * e_i.
        const double fp = approxReciprocalDerivative(sum);
        double dot = 0.0;
        for (int j = 0; j < k; ++j)
            dot += static_cast<double>(grad_out[j]) * e_cache[j];
        for (int i = 0; i < k; ++i) {
            grad_in[i] = static_cast<float>(
                static_cast<double>(grad_out[i]) * out[i] +
                dot * fp * e_cache[i]);
        }
    } else {
        // Standard softmax Jacobian.
        double dot = 0.0;
        for (int j = 0; j < k; ++j)
            dot += static_cast<double>(grad_out[j]) * out[j];
        for (int i = 0; i < k; ++i) {
            grad_in[i] = static_cast<float>(
                out[i] * (static_cast<double>(grad_out[i]) - dot));
        }
    }
}

} // namespace qt8
