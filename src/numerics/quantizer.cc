#include "numerics/quantizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

#include "numerics/float_bits.h"
#include "util/parallel.h"

namespace qt8 {
namespace {

/// Build the sorted list of finite values of a minifloat format.
std::vector<double>
minifloatValues(const MinifloatSpec &spec)
{
    std::vector<double> vals;
    vals.reserve(spec.numCodes());
    for (uint32_t c = 0; c < spec.numCodes(); ++c) {
        if (spec.isNan(c) || spec.isInf(c))
            continue;
        vals.push_back(spec.decode(c));
    }
    std::sort(vals.begin(), vals.end());
    // +0 and -0 both decode to 0.0; drop the duplicate.
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    return vals;
}

} // namespace

Quantizer
Quantizer::identity()
{
    Quantizer q;
    q.kind_ = Kind::kIdentity;
    q.name_ = "fp32";
    q.max_rep_ = std::numeric_limits<double>::infinity();
    q.scaling_target_ = 1.0;
    return q;
}

Quantizer
Quantizer::bf16()
{
    Quantizer q;
    q.kind_ = Kind::kBfloat16;
    q.name_ = "bf16";
    q.max_rep_ = Bfloat16::kMax;
    q.scaling_target_ = Bfloat16::kMax;
    return q;
}

void
Quantizer::buildGridFromCodec(
    const std::vector<double> &values,
    const std::function<double(double)> &ref_quantize)
{
    kind_ = Kind::kGrid;
    values_.assign(values.begin(), values.end());
    thresholds_.clear();
    thresholds_.reserve(values.size() - 1);

    // Floats ordered lexicographically: map the IEEE bit pattern to a
    // monotone unsigned key so we can bisect over all floats between two
    // grid values.
    auto lex = [](float f) -> uint32_t {
        const uint32_t u = bits_from_float(f);
        return (u & 0x80000000u) ? ~u : (u | 0x80000000u);
    };
    auto unlex = [](uint32_t k) -> float {
        const uint32_t u = (k & 0x80000000u) ? (k & 0x7FFFFFFFu) : ~k;
        return float_from_bits(u);
    };

    for (size_t i = 0; i + 1 < values.size(); ++i) {
        const double lo = values[i];
        const double hi = values[i + 1];
        // Grid values of <=16-bit formats are exactly representable in
        // float, so (float)lo maps to lo and (float)hi maps to hi. The
        // rounding cut need not sit at the arithmetic midpoint (posit
        // rounds on the bit string, which is geometric across regime /
        // exponent truncation), so bisect with the reference codec.
        uint32_t la = lex(static_cast<float>(lo));
        uint32_t lb = lex(static_cast<float>(hi));
        assert(ref_quantize(static_cast<float>(lo)) == lo);
        assert(ref_quantize(static_cast<float>(hi)) == hi);
        while (lb - la > 1) {
            const uint32_t m = la + (lb - la) / 2;
            if (ref_quantize(unlex(m)) == lo)
                la = m;
            else
                lb = m;
        }
        const float t = unlex(la); // largest float rounding down to lo
        assert(thresholds_.empty() || t > thresholds_.back());
        thresholds_.push_back(t);
    }

    buildLut();
}

void
Quantizer::buildLut()
{
    // Index quantize() would return for x, by full binary search. The
    // saturation pre-checks of the search path are implied: x above
    // every threshold lands on values_.back(), x at or below the first
    // threshold on values_.front(), and +/-inf fall out the same way.
    auto searchIndex = [this](float x) -> uint16_t {
        const auto it =
            std::lower_bound(thresholds_.begin(), thresholds_.end(), x);
        return static_cast<uint16_t>(it - thresholds_.begin());
    };

    lut_lo_.assign(kLutBuckets, 0);
    lut_hi_.assign(kLutBuckets, 0);
    for (uint32_t b = 0; b < kLutBuckets; ++b) {
        const uint32_t base = b << 16;
        // Bucket members share the top 16 bits, so they are contiguous
        // in value order and on one side of zero; the extreme members
        // sit at the all-zero / all-one low halfwords (order flipped for
        // negative buckets).
        const bool neg = (b & 0x8000u) != 0;
        float vmin = float_from_bits(neg ? (base | 0xFFFFu) : base);
        float vmax = float_from_bits(neg ? base : (base | 0xFFFFu));
        // Exponent-all-ones buckets contain NaNs, which never reach the
        // table (quantize checks isnan first); only the +/-inf member,
        // if present, matters.
        if (std::isnan(vmin) && std::isnan(vmax))
            continue; // unreachable bucket
        if (std::isnan(vmin))
            vmin = vmax;
        if (std::isnan(vmax))
            vmax = vmin;
        const uint16_t lo = searchIndex(vmin);
        const uint16_t hi = searchIndex(vmax);
        assert(lo <= hi);
        lut_lo_[b] = lo;
        lut_hi_[b] = hi;
    }
}

Quantizer
Quantizer::posit(const PositSpec &spec)
{
    Quantizer q;
    q.name_ = spec.name();
    q.max_rep_ = spec.maxpos();
    // Paper section 5.1: scaling amax to posit maxpos is ineffective due
    // to tapered precision; amax -> 64 works best for Posit8. We keep 64
    // for all 8-bit posits and scale it with width for wider posits.
    q.scaling_target_ = spec.nbits() == 8 ? 64.0 : 256.0;
    q.buildGridFromCodec(
        spec.allValues(),
        [&spec](double x) { return spec.quantize(x); });
    return q;
}

Quantizer
Quantizer::minifloat(const MinifloatSpec &spec)
{
    Quantizer q;
    q.name_ = spec.name;
    q.max_rep_ = spec.maxFinite();
    q.scaling_target_ = spec.maxFinite();
    q.buildGridFromCodec(
        minifloatValues(spec),
        [&spec](double x) { return spec.decode(spec.encode(x)); });
    return q;
}

Quantizer
Quantizer::int8()
{
    Quantizer q;
    q.kind_ = Kind::kInt8;
    q.name_ = "int8";
    q.max_rep_ = 127.0;
    q.scaling_target_ = 127.0;
    return q;
}

namespace {

/// Symmetric int8 rounding of one buffer with scale = amax/127.
void
int8QuantizeBuffer(float *p, size_t n)
{
    double amax = 0.0;
#pragma omp parallel for schedule(static) reduction(max : amax) \
    if (useParallel(static_cast<int64_t>(n)))
    for (size_t i = 0; i < n; ++i) {
        const double a = std::fabs(static_cast<double>(p[i]));
        if (std::isfinite(a) && a > amax)
            amax = a;
    }
    if (amax == 0.0)
        return;
    const float scale = static_cast<float>(amax / 127.0);
    const float inv = 1.0f / scale;
#pragma omp parallel for schedule(static) \
    if (useParallel(static_cast<int64_t>(n)))
    for (size_t i = 0; i < n; ++i) {
        float q = std::nearbyintf(p[i] * inv);
        q = std::min(127.0f, std::max(-127.0f, q));
        p[i] = q * scale;
    }
}

} // namespace

Quantizer
Quantizer::byName(const std::string &name)
{
    if (name == "int8")
        return int8();
    if (name == "fp32" || name == "none" || name == "identity")
        return identity();
    if (name == "bf16")
        return bf16();
    if (name == "posit8" || name == "posit(8,1)")
        return posit(posit8_1());
    if (name == "posit(8,0)")
        return posit(posit8_0());
    if (name == "posit(8,2)")
        return posit(posit8_2());
    if (name == "posit16" || name == "posit(16,1)")
        return posit(posit16_1());
    if (name == "e4m3")
        return minifloat(e4m3());
    if (name == "e5m2")
        return minifloat(e5m2());
    if (name == "e5m3")
        return minifloat(e5m3());
    if (name == "e5m4")
        return minifloat(e5m4());
    if (name == "fp16")
        return minifloat(fp16());
    throw std::invalid_argument("unknown quantizer name: " + name);
}

float
Quantizer::quantize(float x) const
{
    switch (kind_) {
      case Kind::kIdentity:
        return x;
      case Kind::kBfloat16:
        return Bfloat16::quantize(x);
      case Kind::kInt8:
        // Scalar int8 rounds on the unit grid (scale is only defined
        // per buffer; use quantizeInPlace for tensors).
        return std::min(127.0f,
                        std::max(-127.0f, std::nearbyintf(x)));
      case Kind::kGrid:
        break;
    }
    if (std::isnan(x))
        return x;
    // LUT fast path: the top 16 bits select the grid-index range this
    // float can round to; buckets that straddle a threshold finish with
    // a lower_bound over that tiny window, which equals the full search
    // because thresholds below lut_lo_ are all < x and the result is
    // bounded above by lut_hi_.
    const uint32_t b = bits_from_float(x) >> 16;
    const uint32_t lo = lut_lo_[b];
    const uint32_t hi = lut_hi_[b];
    if (lo == hi)
        return values_[lo];
    const float *tb = thresholds_.data();
    const float *it = std::lower_bound(tb + lo, tb + hi, x);
    return values_[static_cast<size_t>(it - tb)];
}

uint16_t
Quantizer::gridIndex(float x) const
{
    if (kind_ != Kind::kGrid)
        throw std::invalid_argument(
            "gridIndex: not a grid quantizer: " + name_);
    if (std::isnan(x))
        throw std::invalid_argument("gridIndex: NaN has no grid code");
    // Same LUT walk as quantize(), returning the index instead of the
    // value (quantize() == values_[gridIndex()] by construction).
    const uint32_t b = bits_from_float(x) >> 16;
    const uint32_t lo = lut_lo_[b];
    const uint32_t hi = lut_hi_[b];
    if (lo == hi)
        return static_cast<uint16_t>(lo);
    const float *tb = thresholds_.data();
    const float *it = std::lower_bound(tb + lo, tb + hi, x);
    return static_cast<uint16_t>(it - tb);
}

float
Quantizer::quantizeBySearch(float x) const
{
    if (kind_ != Kind::kGrid)
        return quantize(x);
    if (std::isnan(x))
        return x;
    if (x >= values_.back())
        return values_.back(); // saturate (also +inf)
    if (x <= values_.front())
        return values_.front();
    // First threshold >= x selects the grid value.
    const auto it =
        std::lower_bound(thresholds_.begin(), thresholds_.end(), x);
    const size_t idx = static_cast<size_t>(it - thresholds_.begin());
    return values_[idx];
}

void
Quantizer::quantizeInPlace(float *p, size_t n) const
{
    if (kind_ == Kind::kIdentity)
        return;
    if (kind_ == Kind::kInt8) {
        int8QuantizeBuffer(p, n);
        return;
    }
#pragma omp parallel for schedule(static) \
    if (useParallel(static_cast<int64_t>(n)))
    for (size_t i = 0; i < n; ++i)
        p[i] = quantize(p[i]);
}

void
Quantizer::quantizeInPlace(float *p, size_t n, QuantHealth &health) const
{
    health.count += n;
    if (kind_ == Kind::kInt8) {
        // Dynamic scale: stats are defined against the scaled grid, so
        // fuse them into a serial re-implementation of the buffer pass.
        double amax = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double a = std::fabs(static_cast<double>(p[i]));
            if (std::isfinite(a)) {
                if (a > amax)
                    amax = a;
            } else {
                ++health.nonfinite;
            }
        }
        if (amax > health.amax)
            health.amax = amax;
        if (amax == 0.0)
            return;
        const float scale = static_cast<float>(amax / 127.0);
        const float inv = 1.0f / scale;
        for (size_t i = 0; i < n; ++i) {
            const float x = p[i];
            float q = std::nearbyintf(x * inv);
            q = std::min(127.0f, std::max(-127.0f, q));
            q *= scale;
            if (std::isfinite(x)) {
                health.abs_err_sum += std::fabs(
                    static_cast<double>(x) - static_cast<double>(q));
                if (x != 0.0f && q == 0.0f)
                    ++health.underflow;
                // amax itself lands on ±127*scale, never beyond: no
                // finite input saturates under a per-tensor scale.
            }
            p[i] = q;
        }
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        const float x = p[i];
        const float q = quantize(x);
        if (std::isfinite(x)) {
            const double a = std::fabs(static_cast<double>(x));
            if (a > health.amax)
                health.amax = a;
            if (a > max_rep_)
                ++health.saturated;
            if (x != 0.0f && q == 0.0f)
                ++health.underflow;
            health.abs_err_sum += std::fabs(static_cast<double>(x) -
                                            static_cast<double>(q));
        } else {
            ++health.nonfinite;
        }
        p[i] = q;
    }
}

void
Quantizer::quantizeRowsInPlace(float *p, size_t rows, size_t cols) const
{
    if (kind_ != Kind::kInt8) {
        quantizeInPlace(p, rows * cols);
        return;
    }
    for (size_t r = 0; r < rows; ++r)
        int8QuantizeBuffer(p + r * cols, cols);
}

void
AmaxHistory::push(double amax)
{
    if (window_ <= 0)
        return;
    if (static_cast<int>(history_.size()) < window_) {
        history_.push_back(amax);
        return;
    }
    // Ring overwrite of the oldest entry: O(1) per step, versus the
    // O(window) erase(begin()) this replaced. predict() is a max over
    // the window, so element order is irrelevant.
    history_[next_] = amax;
    next_ = (next_ + 1) % static_cast<size_t>(window_);
}

double
AmaxHistory::predict(double fallback) const
{
    if (history_.empty())
        return fallback;
    return *std::max_element(history_.begin(), history_.end());
}

double
TensorScaler::scaleFor(double amax, double target)
{
    if (!(amax > 0.0) || !std::isfinite(amax))
        return 1.0;
    const double log_scale = std::log2(target / amax);
    return std::exp2(std::nearbyint(log_scale));
}

void
TensorScaler::quantizeInPlace(float *p, size_t n)
{
    double amax = 0.0;
#pragma omp parallel for schedule(static) reduction(max : amax) \
    if (useParallel(static_cast<int64_t>(n)))
    for (size_t i = 0; i < n; ++i) {
        const double a = std::fabs(static_cast<double>(p[i]));
        if (std::isfinite(a) && a > amax)
            amax = a;
    }

    const double predicted = history_.empty() ? amax : history_.predict();
    const double target = target_override_ > 0.0
        ? target_override_
        : quantizer_->scalingTargetAmax();
    const double s = scaleFor(predicted, target);
    const float fs = static_cast<float>(s);
    const float inv = static_cast<float>(1.0 / s);
#pragma omp parallel for schedule(static) \
    if (useParallel(static_cast<int64_t>(n)))
    for (size_t i = 0; i < n; ++i)
        p[i] = quantizer_->quantize(p[i] * fs) * inv;

    history_.push(amax);
}

} // namespace qt8
