#include "numerics/posit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace qt8 {

PositSpec::PositSpec(int nbits, int es, SubMinposPolicy policy)
    : nbits_(nbits), es_(es), policy_(policy),
      mask_((nbits >= 32) ? 0xFFFFFFFFu : ((1u << nbits) - 1))
{
    assert(nbits >= 3 && nbits <= 32);
    assert(es >= 0 && es <= 3);
}

std::string
PositSpec::name() const
{
    return "posit(" + std::to_string(nbits_) + "," + std::to_string(es_) +
           ")";
}

double
PositSpec::maxpos() const
{
    return std::ldexp(1.0, (nbits_ - 2) << es_);
}

double
PositSpec::minpos() const
{
    return std::ldexp(1.0, -((nbits_ - 2) << es_));
}

double
PositSpec::decode(uint32_t code) const
{
    code &= mask_;
    if (code == 0)
        return 0.0;
    if (code == narCode())
        return std::numeric_limits<double>::quiet_NaN();

    const bool neg = (code >> (nbits_ - 1)) & 1;
    const uint32_t body = neg ? ((~code + 1) & mask_) : code;

    // Parse the N-1 body bits MSB-first: regime, exponent, fraction.
    int i = nbits_ - 2;
    const int r0 = (body >> i) & 1;
    int run = 0;
    while (i >= 0 && static_cast<int>((body >> i) & 1) == r0) {
        ++run;
        --i;
    }
    const int k = r0 ? run - 1 : -run;
    if (i >= 0)
        --i; // skip the regime terminator bit

    int e = 0;
    int ebits = 0;
    while (ebits < es_ && i >= 0) {
        e = (e << 1) | ((body >> i) & 1);
        ++ebits;
        --i;
    }
    e <<= (es_ - ebits); // absent low exponent bits are zero

    const int fbits = i + 1;
    const uint32_t f = fbits > 0 ? (body & ((1u << fbits) - 1)) : 0;
    const double frac = 1.0 + std::ldexp(static_cast<double>(f), -fbits);

    const double val = std::ldexp(frac, (k << es_) + e);
    return neg ? -val : val;
}

uint32_t
PositSpec::encode(double x) const
{
    if (std::isnan(x))
        return narCode();
    if (x == 0.0)
        return 0;

    const bool neg = x < 0.0;
    double a = std::fabs(x);

    uint32_t body;
    if (std::isinf(x) || a >= maxpos()) {
        // Posit saturation: no overflow to NaR (paper section 3.4).
        body = maxposCode();
    } else if (a < minpos()) {
        const double half = 0.5 * minpos();
        if (policy_ == SubMinposPolicy::kPositStandard) {
            body = 1; // nonzero never underflows to zero
        } else if (a < half || a == half) {
            // RNE below minpos; the tie at minpos/2 goes to the even
            // code, which is zero.
            return 0;
        } else {
            body = 1;
        }
    } else {
        // General path: assemble regime|exp|fraction MSB-first into a
        // wide word, cut at N-1 bits, and round to nearest even. Posit
        // codes are monotone in value, so RNE is a conditional +1 on the
        // truncated body using guard/sticky bits.
        int e_unb;
        const double f = std::frexp(a, &e_unb); // a = f*2^e_unb, f in [.5,1)
        const int kexp = e_unb - 1;             // a = m*2^kexp, m in [1,2)
        const double m = 2.0 * f;

        int k = kexp >> es_; // floor division (es_ power of two shift)
        const int e = kexp - (k << es_);
        assert(e >= 0 && e < (1 << es_));

        unsigned __int128 acc = 0;
        int pos = 0;
        auto put = [&acc, &pos](uint64_t bits, int width) {
            acc |= static_cast<unsigned __int128>(bits)
                   << (128 - pos - width);
            pos += width;
        };

        if (k >= 0) {
            // k+1 ones then a zero terminator.
            put((1ull << (k + 1)) - 1, k + 1);
            put(0, 1);
        } else {
            // -k zeros then a one terminator.
            put(0, -k);
            put(1, 1);
        }
        if (es_ > 0)
            put(static_cast<uint64_t>(e), es_);

        // Fraction: m - 1 in [0,1) with at most 52 significant bits;
        // ldexp by 52 is exact.
        const uint64_t frac_u =
            static_cast<uint64_t>(std::ldexp(m - 1.0, 52));
        put(frac_u, 52);

        const int body_bits = nbits_ - 1;
        body = static_cast<uint32_t>(acc >> (128 - body_bits));
        const int guard =
            static_cast<int>((acc >> (128 - body_bits - 1)) & 1);
        const bool sticky =
            (acc << (body_bits + 1)) != 0;

        if (guard && (sticky || (body & 1)))
            ++body;
        if (body > maxposCode())
            body = maxposCode(); // saturate instead of wrapping to NaR
    }

    const uint32_t code = neg ? ((~body + 1) & mask_) : body;
    return code;
}

std::vector<double>
PositSpec::allValues() const
{
    std::vector<double> vals;
    vals.reserve(numCodes() - 1);
    for (uint32_t c = 0; c < numCodes(); ++c) {
        if (c == narCode())
            continue;
        vals.push_back(decode(c));
    }
    std::sort(vals.begin(), vals.end());
    return vals;
}

namespace {

inline bool
isNar(const PositSpec &spec, uint32_t c)
{
    return (c & ((1u << spec.nbits()) - 1)) == spec.narCode();
}

} // namespace

uint32_t
PositSpec::add(uint32_t a, uint32_t b) const
{
    if (isNar(*this, a) || isNar(*this, b))
        return narCode();
    return encode(decode(a) + decode(b));
}

uint32_t
PositSpec::sub(uint32_t a, uint32_t b) const
{
    if (isNar(*this, a) || isNar(*this, b))
        return narCode();
    return encode(decode(a) - decode(b));
}

uint32_t
PositSpec::mul(uint32_t a, uint32_t b) const
{
    if (isNar(*this, a) || isNar(*this, b))
        return narCode();
    return encode(decode(a) * decode(b));
}

uint32_t
PositSpec::div(uint32_t a, uint32_t b) const
{
    if (isNar(*this, a) || isNar(*this, b))
        return narCode();
    const double db = decode(b);
    if (db == 0.0)
        return narCode(); // x / 0 = NaR per the posit standard
    return encode(decode(a) / db);
}

uint32_t
PositSpec::neg(uint32_t a) const
{
    if (isNar(*this, a))
        return narCode();
    return (~a + 1) & mask_;
}

uint32_t
PositSpec::fusedDot(const uint32_t *a, const uint32_t *b, int n) const
{
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
        if (isNar(*this, a[i]) || isNar(*this, b[i]))
            return narCode();
        acc += decode(a[i]) * decode(b[i]);
    }
    return encode(acc);
}

const PositSpec &
posit8_0()
{
    static const PositSpec spec(8, 0);
    return spec;
}

const PositSpec &
posit8_1()
{
    static const PositSpec spec(8, 1);
    return spec;
}

const PositSpec &
posit8_2()
{
    static const PositSpec spec(8, 2);
    return spec;
}

const PositSpec &
posit16_1()
{
    static const PositSpec spec(16, 1);
    return spec;
}

} // namespace qt8
