#include "numerics/float_bits.h"

#include <cmath>

namespace qt8 {

Bfloat16
Bfloat16::fromBits(uint16_t bits)
{
    Bfloat16 b;
    b.bits_ = bits;
    return b;
}

Bfloat16
Bfloat16::fromFloat(float f)
{
    uint32_t u = bits_from_float(f);
    if (std::isnan(f)) {
        // Preserve NaN; set the quiet bit so truncation cannot produce Inf.
        return fromBits(static_cast<uint16_t>((u >> 16) | 0x0040));
    }
    // Round-to-nearest-even on the 16 dropped bits.
    uint32_t rounding_bias = 0x7FFF + ((u >> 16) & 1);
    u += rounding_bias;
    return fromBits(static_cast<uint16_t>(u >> 16));
}

float
Bfloat16::toFloat() const
{
    return float_from_bits(static_cast<uint32_t>(bits_) << 16);
}

} // namespace qt8
