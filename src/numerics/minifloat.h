/**
 * @file
 * Generic small floating-point formats (minifloats), covering the FP8
 * formats used in the paper:
 *
 *  - E4M3: NVIDIA's 8-bit format for forward-pass tensors. 4 exponent
 *    bits, 3 mantissa bits, bias 7, *no infinities*; the all-ones
 *    pattern with mantissa 111 encodes NaN, so the largest finite value
 *    is S.1111.110 = 448.
 *  - E5M2: IEEE-like 8-bit format for backward-pass tensors. 5 exponent
 *    bits, 2 mantissa bits, bias 15, with infinities and NaNs; largest
 *    finite value 57344.
 *  - E5M3: the 9-bit "hybrid FP8" internal format of the paper's
 *    accelerator (section 7.1) that can contain both E4M3 and E5M2
 *    operands in the MAC datapath.
 *
 * All formats support subnormals.
 */
#ifndef QT8_NUMERICS_MINIFLOAT_H
#define QT8_NUMERICS_MINIFLOAT_H

#include <cstdint>
#include <string>

namespace qt8 {

/// Infinity/NaN convention of a minifloat format.
enum class MinifloatFlavor {
    /// IEEE-754 style: top exponent reserved for Inf (mantissa 0) / NaN.
    kIeee,
    /// NVIDIA FP8 E4M3 style: no Inf; only all-ones code is NaN, the
    /// rest of the top exponent binade holds finite values.
    kFiniteNoInf,
};

/// Static description of a minifloat format.
struct MinifloatSpec
{
    std::string name;      ///< Human-readable name, e.g. "E4M3".
    int exp_bits;          ///< Number of exponent bits.
    int man_bits;          ///< Number of mantissa bits.
    int bias;              ///< Exponent bias.
    MinifloatFlavor flavor;

    int totalBits() const { return 1 + exp_bits + man_bits; }

    /// Largest finite representable magnitude.
    double maxFinite() const;

    /// Smallest positive normal magnitude.
    double minNormal() const;

    /// Smallest positive (subnormal) magnitude.
    double minSubnormal() const;

    /// Decode a code word to its exact numeric value (NaN for NaN codes,
    /// +/-Inf for Inf codes in IEEE flavor).
    double decode(uint32_t code) const;

    /// Encode a value with round-to-nearest-even, saturating out-of-range
    /// finite values (and infinities) to the max finite value, as is
    /// standard practice in FP8 DNN training. NaN encodes to a NaN code.
    uint32_t encode(double x) const;

    /// Total number of code words (2^totalBits).
    uint32_t numCodes() const { return 1u << totalBits(); }

    bool isNan(uint32_t code) const;
    bool isInf(uint32_t code) const;
};

/// NVIDIA-style E4M3 (bias 7, no Inf, max 448).
const MinifloatSpec &e4m3();
/// IEEE-style E5M2 (bias 15, Inf/NaN, max 57344).
const MinifloatSpec &e5m2();
/// Hybrid E5M3 (bias 15, IEEE-style), the accelerator-internal FP8
/// container format.
const MinifloatSpec &e5m3();
/// E5M4, the decoded form of Posit8 operands in the MAC (section 7.1):
/// at most 4 fraction bits and a 5-bit exponent range [-12, 12].
const MinifloatSpec &e5m4();
/// IEEE binary16 (FP16), for comparison studies.
const MinifloatSpec &fp16();

} // namespace qt8

#endif // QT8_NUMERICS_MINIFLOAT_H
