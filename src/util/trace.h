/**
 * @file
 * Lock-cheap span tracer + numeric-health sink (DESIGN.md §11).
 *
 * Two channels share one output file:
 *
 *  - **Timing spans/counters**: `QT8_TRACE_SCOPE("gemm")` opens an RAII
 *    span; `trace::counter`/`trace::instant` emit point events. Events
 *    land in per-thread buffers (one uncontended mutex acquisition per
 *    event — contended only during the final flush), timestamped off
 *    one shared steady_clock epoch so spans from different threads
 *    line up. The export is Chrome `chrome://tracing` / Perfetto JSON
 *    ("traceEvents" array of ph:"X"/"C"/"i" records, microseconds).
 *
 *  - **Numeric health**: per-quant-point QuantHealth counters
 *    (saturation / underflow / non-finite counts, amax, mean |err| vs
 *    the unquantized input) merged into a global table keyed by quant
 *    point ("fwd/gemm", "bwd/activation", "weight", ...). The table is
 *    embedded in the same JSON under "qt8_health" and printable with
 *    healthTable().
 *
 * Enabling: set `QT8_TRACE=<path>` in the environment (the trace is
 * written at process exit), or call `trace::start(path)` /
 * `trace::stop()` around the region of interest. When tracing is off,
 * every hook is a single relaxed atomic load and branch — no locks, no
 * clock reads, no allocation — so instrumented kernels run at full
 * speed (the acceptance bar: bench_kernels --smoke within noise).
 *
 * Span names must be string literals (or otherwise outlive the trace);
 * they are stored as pointers. Dynamic names go through note(), which
 * copies.
 */
#ifndef QT8_UTIL_TRACE_H
#define QT8_UTIL_TRACE_H

#include <atomic>
#include <chrono>
#include <string>

#include "numerics/quantizer.h"

namespace qt8::trace {

namespace detail {
extern std::atomic<bool> g_collecting;
void recordSpan(const char *name,
                std::chrono::steady_clock::time_point t0);
} // namespace detail

/// True while a trace is being collected. Relaxed load: the flag only
/// gates best-effort event capture, never correctness.
inline bool
collecting()
{
    return detail::g_collecting.load(std::memory_order_relaxed);
}

/// Begin collecting into an in-memory buffer; stop() writes it to
/// @p path. Restarting an active trace discards the buffered events.
void start(const std::string &path);

/// Stop collecting, write the JSON trace (events + health + notes) to
/// the start() path, and reset all buffers. No-op when not started.
void stop();

/// Path the current (or last) trace writes to; empty when never started.
std::string activePath();

/// Emit a counter sample (ph:"C"): a stepped time series in the viewer.
void counter(const char *name, double value);

/// Emit an instant event (ph:"i"). @p name must outlive the trace
/// (string literal); use noteInstant for dynamic names.
void instant(const char *name);

/// Instant event with a dynamic name (interned copy).
void noteInstant(const std::string &name);

/// Attach a free-form text record to the trace ("qt8_notes" section) —
/// used to park metrics dumps and bench banners next to the spans they
/// explain.
void note(const std::string &key, const std::string &text);

/// Merge one tensor's quantization-health counters into the global
/// per-quant-point table. Thread-safe; one mutex acquisition per call
/// (callers accumulate per-tensor locally first).
void healthAccumulate(const std::string &point, const QuantHealth &h);

/// Human-readable per-quant-point health table (empty string when no
/// health was recorded).
std::string healthTable();

/// RAII span. Construction checks collecting() once (single branch when
/// off); destruction records the span into the calling thread's buffer.
class Scope
{
  public:
    explicit Scope(const char *name)
    {
        if (!collecting()) {
            name_ = nullptr;
            return;
        }
        name_ = name;
        t0_ = std::chrono::steady_clock::now();
    }
    ~Scope()
    {
        if (name_ != nullptr)
            detail::recordSpan(name_, t0_);
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    const char *name_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace qt8::trace

#define QT8_TRACE_CONCAT2(a, b) a##b
#define QT8_TRACE_CONCAT(a, b) QT8_TRACE_CONCAT2(a, b)
/// Open an RAII timing span covering the rest of the enclosing block.
/// @p name must be a string literal.
#define QT8_TRACE_SCOPE(name) \
    ::qt8::trace::Scope QT8_TRACE_CONCAT(qt8_trace_scope_, __LINE__)(name)

#endif // QT8_UTIL_TRACE_H
