#include "util/crc32.h"

#include <array>

namespace qt8 {

uint32_t
crc32(const void *data, size_t n, uint32_t seed)
{
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *p = static_cast<const unsigned char *>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace qt8
