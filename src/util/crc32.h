/**
 * @file
 * CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
 * buffer — the one integrity checksum of the repo, shared by the
 * QT8CKPT2 checkpoint format (nn/checkpoint.cc) and the QT8SPILL1 KV
 * spill files (serve/kv_spill.cc). Table-driven, one implementation,
 * one test (tests/util/crc32_test.cc).
 *
 * Chaining: crc32(b, nb, crc32(a, na)) equals crc32 of the
 * concatenated buffer, so callers can checksum streamed writes without
 * staging them.
 */
#ifndef QT8_UTIL_CRC32_H
#define QT8_UTIL_CRC32_H

#include <cstddef>
#include <cstdint>

namespace qt8 {

/// CRC32 of @p n bytes at @p data; @p seed chains partial buffers.
uint32_t crc32(const void *data, size_t n, uint32_t seed = 0);

} // namespace qt8

#endif // QT8_UTIL_CRC32_H
