#include "util/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qt8::trace {

namespace detail {
std::atomic<bool> g_collecting{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

enum class EventKind : uint8_t { kSpan, kCounter, kInstant };

struct Event
{
    const char *name; ///< literal or interned — outlives the trace
    double ts_us;
    double dur_us; ///< spans only
    double value;  ///< counters only
    EventKind kind;
};

/// One buffer per thread that ever emitted an event while collecting.
/// The registry holds a shared_ptr alongside the thread_local owner, so
/// events from threads that exited before stop() are still flushed.
struct ThreadBuf
{
    std::mutex mu; ///< uncontended except against the stop() flush
    std::vector<Event> events;
    uint32_t tid = 0;
};

struct NoteRec
{
    std::string key;
    std::string text;
};

/// Trace-start epoch in steady_clock nanoseconds. Atomic (not under
/// Global::mu) so hot-path event recording reads it lock-free; written
/// by start() before g_collecting flips on.
std::atomic<int64_t> g_epoch_ns{0};

int64_t
toNs(Clock::time_point t)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
}

/// Microseconds since the trace epoch.
double
tsUs(Clock::time_point t)
{
    return static_cast<double>(
               toNs(t) - g_epoch_ns.load(std::memory_order_relaxed)) /
           1000.0;
}

struct Global
{
    std::mutex mu; ///< guards everything below
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    uint32_t next_tid = 1;
    std::string path;
    bool started = false;
    std::map<std::string, QuantHealth> health;
    std::vector<NoteRec> notes;
    /// Interned dynamic names; std::deque never relocates elements, so
    /// the c_str pointers stored in events stay valid. Kept across
    /// start()/stop() cycles (bounded by distinct names).
    std::deque<std::string> interned;
    std::map<std::string, const char *> interned_by_name;
};

Global &
global()
{
    static Global *g = new Global(); // never destroyed: threads may
                                     // record during static teardown
    return *g;
}

ThreadBuf &
localBuf()
{
    thread_local std::shared_ptr<ThreadBuf> tls = [] {
        auto buf = std::make_shared<ThreadBuf>();
        Global &g = global();
        std::lock_guard<std::mutex> lock(g.mu);
        buf->tid = g.next_tid++;
        g.bufs.push_back(buf);
        return buf;
    }();
    return *tls;
}

void
append(const char *name, EventKind kind, double ts_us, double dur_us,
       double value)
{
    ThreadBuf &buf = localBuf();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.events.push_back(Event{name, ts_us, dur_us, value, kind});
}

void
jsonEscape(std::string &out, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x",
                              static_cast<unsigned>(c));
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

void
appendEventJson(std::string &out, const Event &e, uint32_t tid)
{
    char num[64];
    out += "{\"name\":\"";
    jsonEscape(out, e.name);
    out += "\",\"cat\":\"qt8\",\"ph\":\"";
    switch (e.kind) {
      case EventKind::kSpan:
        out += 'X';
        break;
      case EventKind::kCounter:
        out += 'C';
        break;
      case EventKind::kInstant:
        out += 'i';
        break;
    }
    out += "\",\"ts\":";
    std::snprintf(num, sizeof(num), "%.3f", e.ts_us);
    out += num;
    if (e.kind == EventKind::kSpan) {
        out += ",\"dur\":";
        std::snprintf(num, sizeof(num), "%.3f", e.dur_us);
        out += num;
    }
    std::snprintf(num, sizeof(num), ",\"pid\":1,\"tid\":%u",
                  static_cast<unsigned>(tid));
    out += num;
    if (e.kind == EventKind::kCounter) {
        out += ",\"args\":{\"value\":";
        std::snprintf(num, sizeof(num), "%.6g", e.value);
        out += num;
        out += '}';
    } else if (e.kind == EventKind::kInstant) {
        out += ",\"s\":\"t\"";
    }
    out += '}';
}

void
writeFile(const std::string &path, const std::string &body)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "qt8 trace: cannot open %s for writing\n",
                     path.c_str());
        return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
}

/// One-shot env hookup: QT8_TRACE=<path> starts a process-lifetime
/// trace flushed at exit.
struct EnvInit
{
    EnvInit()
    {
        const char *path = std::getenv("QT8_TRACE");
        if (path != nullptr && path[0] != '\0') {
            start(path);
            std::atexit([] { stop(); });
        }
    }
};
EnvInit g_env_init;

} // namespace

namespace detail {

void
recordSpan(const char *name, Clock::time_point t0)
{
    const Clock::time_point t1 = Clock::now();
    append(name, EventKind::kSpan, tsUs(t0),
           std::chrono::duration<double, std::micro>(t1 - t0).count(),
           0.0);
}

} // namespace detail

void
start(const std::string &path)
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    for (const auto &buf : g.bufs) {
        std::lock_guard<std::mutex> bl(buf->mu);
        buf->events.clear();
    }
    g.health.clear();
    g.notes.clear();
    g.path = path;
    g.started = true;
    g_epoch_ns.store(toNs(Clock::now()), std::memory_order_relaxed);
    detail::g_collecting.store(true, std::memory_order_release);
}

void
stop()
{
    Global &g = global();
    detail::g_collecting.store(false, std::memory_order_release);
    // Collect under the registry lock. Spans already past their
    // collecting() check may still trickle in after the snapshot;
    // they are dropped by the clear on the next start().
    std::string path;
    std::vector<std::pair<uint32_t, std::vector<Event>>> snap;
    std::map<std::string, QuantHealth> health;
    std::vector<NoteRec> notes;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        if (!g.started)
            return;
        g.started = false;
        path = g.path;
        for (const auto &buf : g.bufs) {
            std::lock_guard<std::mutex> bl(buf->mu);
            if (!buf->events.empty())
                snap.emplace_back(buf->tid, std::move(buf->events));
            buf->events.clear();
        }
        health.swap(g.health);
        notes.swap(g.notes);
    }

    std::string out;
    out.reserve(1 << 16);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto &[tid, events] : snap) {
        for (const Event &e : events) {
            if (!first)
                out += ",\n";
            first = false;
            appendEventJson(out, e, tid);
        }
    }
    out += "],\n\"qt8_health\":[";
    first = true;
    char num[64];
    for (const auto &[point, h] : health) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"point\":\"";
        jsonEscape(out, point);
        out += "\"";
        std::snprintf(num, sizeof(num), ",\"count\":%llu",
                      static_cast<unsigned long long>(h.count));
        out += num;
        std::snprintf(num, sizeof(num), ",\"saturated\":%llu",
                      static_cast<unsigned long long>(h.saturated));
        out += num;
        std::snprintf(num, sizeof(num), ",\"underflow\":%llu",
                      static_cast<unsigned long long>(h.underflow));
        out += num;
        std::snprintf(num, sizeof(num), ",\"nonfinite\":%llu",
                      static_cast<unsigned long long>(h.nonfinite));
        out += num;
        std::snprintf(num, sizeof(num), ",\"amax\":%.9g", h.amax);
        out += num;
        std::snprintf(num, sizeof(num), ",\"mean_abs_err\":%.9g",
                      h.meanAbsErr());
        out += num;
        out += '}';
    }
    out += "],\n\"qt8_notes\":[";
    first = true;
    for (const NoteRec &n : notes) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"key\":\"";
        jsonEscape(out, n.key);
        out += "\",\"text\":\"";
        jsonEscape(out, n.text);
        out += "\"}";
    }
    out += "]}\n";
    writeFile(path, out);
}

std::string
activePath()
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    return g.path;
}

void
counter(const char *name, double value)
{
    if (!collecting())
        return;
    append(name, EventKind::kCounter, tsUs(Clock::now()), 0.0, value);
}

void
instant(const char *name)
{
    if (!collecting())
        return;
    append(name, EventKind::kInstant, tsUs(Clock::now()), 0.0, 0.0);
}

void
noteInstant(const std::string &name)
{
    if (!collecting())
        return;
    const char *interned;
    {
        Global &g = global();
        std::lock_guard<std::mutex> lock(g.mu);
        auto it = g.interned_by_name.find(name);
        if (it == g.interned_by_name.end()) {
            g.interned.push_back(name);
            it = g.interned_by_name
                     .emplace(name, g.interned.back().c_str())
                     .first;
        }
        interned = it->second;
    }
    instant(interned);
}

void
note(const std::string &key, const std::string &text)
{
    if (!collecting())
        return;
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.notes.push_back(NoteRec{key, text});
}

void
healthAccumulate(const std::string &point, const QuantHealth &h)
{
    if (!collecting())
        return;
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.health[point].merge(h);
}

std::string
healthTable()
{
    Global &g = global();
    std::map<std::string, QuantHealth> health;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        health = g.health;
    }
    if (health.empty())
        return std::string();
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "%-20s %12s %10s %10s %10s %12s %14s\n",
                  "quant point", "count", "saturated", "underflow",
                  "nonfinite", "amax", "mean|err|");
    out += line;
    for (const auto &[point, h] : health) {
        std::snprintf(
            line, sizeof(line),
            "%-20s %12llu %10llu %10llu %10llu %12.5g %14.5g\n",
            point.c_str(), static_cast<unsigned long long>(h.count),
            static_cast<unsigned long long>(h.saturated),
            static_cast<unsigned long long>(h.underflow),
            static_cast<unsigned long long>(h.nonfinite), h.amax,
            h.meanAbsErr());
        out += line;
    }
    return out;
}

} // namespace qt8::trace
