/**
 * @file
 * Shared OpenMP plumbing for the dense kernels: a lazily-initialized
 * thread-count knob and the size guard used by every parallel region.
 *
 * `QT8_THREADS=<n>` in the environment pins the worker count (applied
 * once via omp_set_num_threads on first kernel use), so CI and
 * reproducibility-sensitive runs can force single-threaded execution
 * without rebuilding. Header-only; compiles to the serial path when
 * OpenMP is unavailable.
 */
#ifndef QT8_UTIL_PARALLEL_H
#define QT8_UTIL_PARALLEL_H

#include <cstdint>
#include <cstdlib>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace qt8 {

/**
 * Effective worker count for the OpenMP kernels. Reads QT8_THREADS once
 * on first use; a positive value is applied with omp_set_num_threads.
 * Returns 1 when built without OpenMP.
 */
inline int
kernelThreads()
{
    static const int n = [] {
#ifdef _OPENMP
        const char *env = std::getenv("QT8_THREADS");
        if (env != nullptr && *env != '\0') {
            const int want = std::atoi(env);
            if (want > 0) {
                omp_set_num_threads(want);
                return want;
            }
        }
        return omp_get_max_threads();
#else
        return 1;
#endif
    }();
    return n;
}

/// Below this many elements the fork-join overhead dominates; the
/// kernels stay serial (which also keeps tiny problems deterministic
/// under any thread count).
inline constexpr int64_t kParallelGrain = 8192;

/// Size guard for the elementwise/reduction kernels.
inline bool
useParallel(int64_t n)
{
    return n >= kParallelGrain && kernelThreads() > 1;
}

} // namespace qt8

#endif // QT8_UTIL_PARALLEL_H
