/**
 * @file
 * Minimal recursive-descent JSON parser, just big enough to read back
 * the tracer's own output (util/trace.h): objects, arrays, strings
 * with the escapes the writer emits, numbers, true/false/null. Header
 * only; used by tools/trace_summary and the tracer tests to verify
 * that emitted traces are well-formed without an external dependency.
 *
 * Not a general-purpose parser: \uXXXX escapes outside the Basic
 * Latin range decode to '?', and numbers parse via strtod.
 */
#ifndef QT8_UTIL_TRACE_READER_H
#define QT8_UTIL_TRACE_READER_H

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace qt8::json {

struct Value
{
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj;

    bool isObject() const { return type == Type::kObject; }
    bool isArray() const { return type == Type::kArray; }
    bool isString() const { return type == Type::kString; }
    bool isNumber() const { return type == Type::kNumber; }

    /// Object member lookup; nullptr when absent or not an object.
    const Value *
    find(const std::string &key) const
    {
        if (type != Type::kObject)
            return nullptr;
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }

    /// Member's number (or @p fallback when absent / not a number).
    double
    numberAt(const std::string &key, double fallback = 0.0) const
    {
        const Value *v = find(key);
        return (v != nullptr && v->isNumber()) ? v->number : fallback;
    }

    /// Member's string (or empty when absent / not a string).
    std::string
    stringAt(const std::string &key) const
    {
        const Value *v = find(key);
        return (v != nullptr && v->isString()) ? v->str : std::string();
    }
};

namespace detail {

class Parser
{
  public:
    Parser(const char *p, const char *end) : p_(p), end_(end) {}

    bool
    parse(Value &out, std::string *err)
    {
        skipWs();
        if (!value(out)) {
            if (err != nullptr)
                *err = err_.empty() ? "parse error" : err_;
            return false;
        }
        skipWs();
        if (p_ != end_) {
            if (err != nullptr)
                *err = "trailing characters after JSON value";
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r'))
            ++p_;
    }

    bool
    fail(const char *what)
    {
        if (err_.empty())
            err_ = what;
        return false;
    }

    bool
    literal(const char *text, Value &out, Value::Type type, bool b)
    {
        for (const char *t = text; *t != '\0'; ++t, ++p_)
            if (p_ == end_ || *p_ != *t)
                return fail("bad literal");
        out.type = type;
        out.boolean = b;
        return true;
    }

    bool
    value(Value &out)
    {
        if (p_ == end_)
            return fail("unexpected end of input");
        switch (*p_) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out.type = Value::Type::kString;
            return string(out.str);
          case 't':
            return literal("true", out, Value::Type::kBool, true);
          case 'f':
            return literal("false", out, Value::Type::kBool, false);
          case 'n':
            return literal("null", out, Value::Type::kNull, false);
          default:
            return number(out);
        }
    }

    bool
    object(Value &out)
    {
        out.type = Value::Type::kObject;
        ++p_; // '{'
        skipWs();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (p_ == end_ || *p_ != '"' || !string(key))
                return fail("expected object key");
            skipWs();
            if (p_ == end_ || *p_ != ':')
                return fail("expected ':'");
            ++p_;
            skipWs();
            Value v;
            if (!value(v))
                return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (p_ == end_)
                return fail("unterminated object");
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == '}') {
                ++p_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(Value &out)
    {
        out.type = Value::Type::kArray;
        ++p_; // '['
        skipWs();
        if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        for (;;) {
            skipWs();
            Value v;
            if (!value(v))
                return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (p_ == end_)
                return fail("unterminated array");
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == ']') {
                ++p_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string(std::string &out)
    {
        ++p_; // '"'
        while (p_ != end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ == end_)
                    return fail("unterminated escape");
                switch (*p_) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        ++p_;
                        if (p_ == end_)
                            return fail("bad \\u escape");
                        const char c = *p_;
                        code <<= 4;
                        if (c >= '0' && c <= '9')
                            code |= static_cast<unsigned>(c - '0');
                        else if (c >= 'a' && c <= 'f')
                            code |= static_cast<unsigned>(c - 'a' + 10);
                        else if (c >= 'A' && c <= 'F')
                            code |= static_cast<unsigned>(c - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    out += code < 0x80 ? static_cast<char>(code) : '?';
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                ++p_;
            } else {
                out += *p_++;
            }
        }
        if (p_ == end_)
            return fail("unterminated string");
        ++p_; // closing '"'
        return true;
    }

    bool
    number(Value &out)
    {
        char *parse_end = nullptr;
        out.number = std::strtod(p_, &parse_end);
        if (parse_end == p_)
            return fail("bad number");
        out.type = Value::Type::kNumber;
        p_ = parse_end;
        return true;
    }

    const char *p_;
    const char *end_;
    std::string err_;
};

} // namespace detail

/// Parse @p text into @p out. Returns false (with *err set when
/// non-null) on malformed input.
inline bool
parse(const std::string &text, Value &out, std::string *err = nullptr)
{
    detail::Parser parser(text.data(), text.data() + text.size());
    return parser.parse(out, err);
}

} // namespace qt8::json

#endif // QT8_UTIL_TRACE_READER_H
